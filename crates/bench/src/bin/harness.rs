//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p ov-bench --bin harness`
//!
//! Flags (see `--help` for the same text):
//!
//! - `--threads N` (default 1) additionally runs the multi-threaded read
//!   experiments in E4 and E5: population scans split across `N` workers,
//!   and `N` concurrent reader threads sharing one view.
//! - `--metrics FILE` writes, after all experiments, a JSON snapshot of
//!   the process-wide metrics registry (store mutations, journal delta/gap
//!   counts, index lookups, view population path counters and latency
//!   histograms with p50/p95/p99) to `FILE`.
//! - `--trace FILE` enables the flight recorder for the whole run and
//!   writes the recorded spans to `FILE` on exit — Chrome trace-event JSON
//!   (load in Perfetto / `chrome://tracing`), or JSON-lines when `FILE`
//!   ends in `.jsonl`.
//! - `--workload FILE` enables query profiling for the whole run and
//!   writes the per-fingerprint workload registry (calls, rows, latency
//!   quantiles, engine mix, population-path mix) as JSON to `FILE`.
//! - `--slowlog FILE` enables query profiling for the whole run and writes
//!   the captured slow-query log (query text, fingerprint, duration,
//!   annotated trace) as JSON to `FILE`.
//! - `--save-baseline [FILE]` writes a baseline snapshot of every timed
//!   table cell (`"Experiment/label/column"` → mean ns, sorted keys) to
//!   `FILE` (default `BENCH_baseline.json`).
//! - `--baseline [FILE]` compares this run against a saved snapshot,
//!   prints per-experiment deltas, and exits nonzero if any cell regressed
//!   past the threshold.
//! - `--threshold X` (default 2.0) sets the regression ratio for
//!   `--baseline`; a cell regresses when `new/old > X` and the absolute
//!   delta clears a small noise floor.
//!
//! Each section corresponds to an experiment id (E1–E19) in EXPERIMENTS.md,
//! which maps them back to the paper's sections. Timings are coarse
//! wall-clock means (use the Criterion benches for statistically careful
//! numbers); the semantic rows are exact.

use std::sync::Mutex;

use ov_bench::*;
use ov_oodb::{sym, ConflictPolicy, Value};
use ov_query::eval_attr;
use ov_views::{IdentityMode, Materialization, ParallelConfig, Population, ViewDef, ViewOptions};

fn main() {
    let args = parse_args();
    let threads = args.threads;
    if args.trace.is_some() {
        ov_oodb::trace::set_enabled(true);
    }
    if args.workload.is_some() || args.slowlog.is_some() {
        ov_oodb::set_profiling(true);
    }
    println!("# Objects-and-Views experiment harness");
    println!("# (sections correspond to EXPERIMENTS.md)");
    if let Some(seed) = args.chaos {
        let outcome = chaos_run(seed, args.budget_ms);
        write_metrics_and_trace(&args);
        match outcome {
            Ok(()) => println!("\nchaos run completed: zero invariant violations."),
            Err(msg) => {
                eprintln!("\nCHAOS FAIL (seed {seed}): {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if threads > 1 {
        println!("# --threads {threads}: E4/E5 include multi-threaded runs");
    }
    e1_virtual_attributes();
    e2_overloading();
    e3_import_hide();
    e4_population();
    e4_parallel(threads);
    e5_resolution();
    e5_concurrent(threads);
    e6_inference();
    e7_parameterized();
    e8_upward_and_schizophrenia();
    e9_identity();
    e10_value_to_object();
    e11_churn();
    e12_relational();
    e13_indexes();
    e14_compiled_engine();
    e15_stacked_views();
    e16_batched_execution();
    e17_profiling_overhead();
    e18_durability(&args);
    e19_planner();
    write_metrics_and_trace(&args);
    if let Some(path) = &args.save_baseline {
        let json = baseline::to_json(&baseline::snapshot());
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error writing baseline to {path}: {e}");
            std::process::exit(1);
        }
        println!("# baseline written to {path}");
    }
    println!("\nall experiments completed.");
    if let Some(path) = &args.baseline {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error reading baseline {path}: {e}");
            eprintln!("(generate one first with `harness --save-baseline {path}`)");
            std::process::exit(2);
        });
        let saved = baseline::parse_json(&src).unwrap_or_else(|e| {
            eprintln!("error parsing baseline {path}: {e}");
            std::process::exit(2);
        });
        let cmp = baseline::compare(&saved, &baseline::snapshot(), args.threshold);
        print!("\n{}", baseline::render(&cmp, args.threshold));
        if cmp.regressions() > 0 {
            eprintln!(
                "FAIL: {} cell(s) regressed past {}x",
                cmp.regressions(),
                args.threshold
            );
            std::process::exit(1);
        }
    }
}

fn write_metrics_and_trace(args: &Args) {
    if let Some(path) = &args.metrics {
        let json = ov_oodb::registry().snapshot().to_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error writing metrics to {path}: {e}");
            std::process::exit(1);
        }
        println!("\n# metrics written to {path}");
    }
    if let Some(path) = &args.workload {
        let json = ov_oodb::workload().to_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error writing workload to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "\n# workload registry ({} fingerprints) written to {path}",
            ov_oodb::workload().len()
        );
    }
    if let Some(path) = &args.slowlog {
        let json = ov_oodb::slow_queries().to_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error writing slow-query log to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "# slow-query log ({} entries) written to {path}",
            ov_oodb::slow_queries().len()
        );
    }
    if let Some(path) = &args.trace {
        ov_oodb::trace::set_enabled(false);
        let rec = ov_oodb::recorder();
        let dump = if path.ends_with(".jsonl") {
            rec.dump_jsonl()
        } else {
            rec.dump_chrome_trace()
        };
        if let Err(e) = std::fs::write(path, &dump) {
            eprintln!("error writing trace to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "# trace written to {path} ({} spans from {} threads, {} dropped)",
            rec.snapshot().len(),
            rec.thread_count(),
            rec.dropped()
        );
    }
}

struct Args {
    threads: usize,
    metrics: Option<String>,
    trace: Option<String>,
    workload: Option<String>,
    slowlog: Option<String>,
    baseline: Option<String>,
    save_baseline: Option<String>,
    threshold: f64,
    chaos: Option<u64>,
    budget_ms: Option<u64>,
    data_dir: Option<String>,
    durability: Option<ov_oodb::Durability>,
}

const USAGE: &str = "\
usage: harness [FLAGS]

  --threads N           run E4b/E5b with N worker/reader threads (default 1)
  --metrics FILE        write a JSON metrics snapshot (counters + histogram
                        p50/p95/p99) to FILE after the run
  --trace FILE          enable the flight recorder and write the span trace
                        to FILE on exit: Chrome trace-event JSON (open in
                        Perfetto), or JSON-lines if FILE ends in .jsonl
  --workload FILE       enable query profiling for the run and write the
                        per-fingerprint workload registry JSON to FILE
  --slowlog FILE        enable query profiling for the run and write the
                        captured slow-query log JSON to FILE
  --save-baseline [FILE]  write a baseline snapshot of every timed cell to
                        FILE (default BENCH_baseline.json)
  --baseline [FILE]     compare this run against the snapshot in FILE
                        (default BENCH_baseline.json); print per-experiment
                        deltas and exit 1 on regressions
  --threshold X         regression ratio for --baseline (default 2.0)
  --chaos SEED          skip the experiments; run the seeded fault-injection
                        workload instead (probabilistic failpoints on every
                        store/query/view site) and verify the robustness
                        invariants: no escaped panics, typed errors only,
                        full recovery once faults clear
  --budget-ms N         (chaos only) run every chaos read under an N ms
                        deadline budget; breaches must surface as typed
                        ResourceExhausted/Cancelled errors
  --data-dir DIR        root for E18's durable stores; files are kept for
                        inspection (default: a temp dir, removed after)
  --durability LEVEL    limit E18 to one commit level: none | wal | walsync
                        (default: all three)
  --help                this text

--baseline and --save-baseline are mutually exclusive (a snapshot taken and
judged by the same run would always pass); --threshold needs --baseline.
--chaos excludes both baseline flags (injected faults distort timings);
--budget-ms needs --chaos.";

fn die(msg: &str) -> ! {
    eprintln!("harness: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        threads: 1,
        metrics: None,
        trace: None,
        workload: None,
        slowlog: None,
        baseline: None,
        save_baseline: None,
        threshold: baseline::DEFAULT_THRESHOLD,
        chaos: None,
        budget_ms: None,
        data_dir: None,
        durability: None,
    };
    let mut threshold_set = false;
    let mut args = std::env::args().skip(1).peekable();
    // A flag value may be omitted for [FILE] flags; anything starting with
    // `--` is the next flag, not a value.
    fn optional_value(
        args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    ) -> Option<String> {
        match args.peek() {
            Some(v) if !v.starts_with("--") => args.next(),
            _ => None,
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a number"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--threads: `{v}` is not a number")));
                out.threads = n.max(1);
            }
            "--metrics" => {
                out.metrics = Some(args.next().unwrap_or_else(|| die("--metrics needs a file")))
            }
            "--trace" => {
                out.trace = Some(args.next().unwrap_or_else(|| die("--trace needs a file")))
            }
            "--workload" => {
                out.workload = Some(
                    args.next()
                        .unwrap_or_else(|| die("--workload needs a file")),
                )
            }
            "--slowlog" => {
                out.slowlog = Some(args.next().unwrap_or_else(|| die("--slowlog needs a file")))
            }
            "--baseline" => {
                out.baseline =
                    Some(optional_value(&mut args).unwrap_or_else(|| baseline::DEFAULT_FILE.into()))
            }
            "--save-baseline" => {
                out.save_baseline =
                    Some(optional_value(&mut args).unwrap_or_else(|| baseline::DEFAULT_FILE.into()))
            }
            "--threshold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--threshold needs a ratio, e.g. 2.0"));
                let x: f64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--threshold: `{v}` is not a number")));
                if !(x.is_finite() && x >= 1.0) {
                    die(&format!(
                        "--threshold must be a finite ratio >= 1.0, got {v}"
                    ));
                }
                out.threshold = x;
                threshold_set = true;
            }
            "--chaos" => {
                let v = args.next().unwrap_or_else(|| die("--chaos needs a seed"));
                let n: u64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--chaos: `{v}` is not a u64 seed")));
                out.chaos = Some(n);
            }
            "--budget-ms" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--budget-ms needs a number of milliseconds"));
                let n: u64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--budget-ms: `{v}` is not a number")));
                out.budget_ms = Some(n);
            }
            "--data-dir" => {
                out.data_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--data-dir needs a directory")),
                )
            }
            "--durability" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--durability needs a level: none, wal, walsync"));
                out.durability = Some(
                    ov_oodb::Durability::parse(&v)
                        .unwrap_or_else(|| die(&format!("--durability: unknown level `{v}`"))),
                );
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    if out.baseline.is_some() && out.save_baseline.is_some() {
        die("--baseline and --save-baseline are mutually exclusive");
    }
    if threshold_set && out.baseline.is_none() {
        die("--threshold only makes sense with --baseline");
    }
    if out.chaos.is_some() && (out.baseline.is_some() || out.save_baseline.is_some()) {
        die("--chaos excludes --baseline/--save-baseline (faults distort timings)");
    }
    if out.budget_ms.is_some() && out.chaos.is_none() {
        die("--budget-ms only makes sense with --chaos");
    }
    out
}

/// The seeded chaos workload behind `--chaos SEED`: every failpoint site
/// armed probabilistically, then a write/read/churn loop against one view.
///
/// Invariants checked (any breach exits nonzero):
/// 1. no panic escapes any store write or view read — injected panics must
///    be contained to typed `QueryError::Panicked` errors or retried away;
/// 2. every failure is a typed error (enforced by construction: both arms
///    return `Result`, and arm 1 catches anything else);
/// 3. once faults clear, the pipeline recovers completely — no poisoned
///    lock, and the next recompute agrees *exactly* with a direct base
///    scan (so a stale or generation-mixed population cannot linger).
fn chaos_run(seed: u64, budget_ms: Option<u64>) -> Result<(), String> {
    use ov_oodb::faults::{self, FaultAction, FaultSchedule};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    println!("\n## chaos — seeded fault-injection workload (seed {seed})");
    if let Some(ms) = budget_ms {
        println!("# every read under a {ms} ms deadline budget");
    }
    // Incremental materialization + parallel scans + an index, so the
    // journal (`store.changes_since`), chunked-scan (`*.scan_chunk`) and
    // `store.index_lookup` sites all sit on the hot path.
    let sys = people(2_000);
    let db = sys.database(sym("Staff")).unwrap();
    let victims = person_oids(&sys, 32);
    let person = {
        let mut d = db.write();
        let p = d.schema.class_by_name(sym("Person")).unwrap();
        d.create_index(p, sym("City")).unwrap();
        p
    };
    // `Adult` is a plain scan population; `Londoner` pushes its equality
    // filter down to the `Person.City` index.
    let view = ViewDef::from_script(
        r#"
        create view Chaos;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Londoner includes (select P from Person where P.City = "London");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .parallel(ParallelConfig::with_threads(4))
            .build(),
    )
    .bind()
    .map_err(|e| e.to_string())?;
    // A staged relational database rides along: `restage` rewrites whole
    // objects, which is the only path through the `store.update` site.
    let mut rdb = payroll(200, 8);
    let (rsys, _) = ov_relational::bridge::stage(&rdb).map_err(|e| e.to_string())?;
    // Warm the population caches first so degradation has a last-good
    // generation to serve.
    view.extent_of(sym("Adult")).map_err(|e| e.to_string())?;
    view.extent_of(sym("Londoner")).map_err(|e| e.to_string())?;

    faults::set_seed(seed);
    for site in [
        "store.insert",
        "store.update",
        "store.set_field",
        "store.remove",
        "store.index_lookup",
        "store.changes_since",
        "query.scan_chunk",
        "view.scan_chunk",
        "view.population_recompute",
    ] {
        faults::arm(site, FaultSchedule::Probability(0.05), FaultAction::Error);
    }
    // One site injects panics too, to exercise unwind containment in the
    // parallel scan path.
    faults::arm(
        "view.scan_chunk",
        FaultSchedule::Probability(0.03),
        FaultAction::Panic,
    );

    // Injected panics are caught below (or inside the parallel scan), but
    // the default hook would still spam stderr for each one.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let budget =
        budget_ms.map(|ms| std::sync::Arc::new(ov_query::Budget::new().with_deadline_ms(ms)));
    let rounds = 500usize;
    let (mut ok_w, mut err_w, mut ok_r, mut err_r) = (0u64, 0u64, 0u64, 0u64);
    let mut created: Vec<ov_oodb::Oid> = Vec::new();
    let mut violation = None;
    for i in 0..rounds {
        // Mutate: mostly field updates, with some churn (insert/remove)
        // and the occasional relational restage, so every store site fires.
        let write = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
            match i % 7 {
                3 => {
                    // Whole-object replacement through `Store::update`.
                    let o = victims[i % victims.len()];
                    let mut d = db.write();
                    let t = d.store.require(o).map_err(|e| e.to_string())?.value.clone();
                    d.store.update(o, t).map_err(|e| e.to_string())
                }
                4 => {
                    rdb.relation_mut(sym("Emp"))
                        .unwrap()
                        .update(|_| true, sym("Salary"), Value::Int(i as i64))
                        .map_err(|e| e.to_string())?;
                    ov_relational::bridge::restage(&rdb, &rsys).map_err(|e| e.to_string())
                }
                5 => db
                    .write()
                    .create_object(
                        person,
                        Value::tuple([
                            ("Name", Value::str(&format!("chaos{i}"))),
                            ("Age", Value::Int((i % 90) as i64)),
                            ("Sex", Value::str("male")),
                            ("City", Value::str("London")),
                            ("Street", Value::str("1 St")),
                            ("Income", Value::Int(0)),
                            ("Kids", Value::Int(0)),
                        ]),
                    )
                    .map(|o| created.push(o))
                    .map_err(|e| e.to_string()),
                6 if !created.is_empty() => {
                    let o = created.swap_remove(i % created.len());
                    db.write()
                        .delete_object(o)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                }
                _ => {
                    let o = victims[i % victims.len()];
                    db.write()
                        .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
                        .map_err(|e| e.to_string())
                }
            }
        }));
        match write {
            Ok(Ok(())) => ok_w += 1,
            Ok(Err(_)) => err_w += 1,
            Err(_) => {
                violation = Some(format!("round {i}: a panic escaped a store write"));
                break;
            }
        }
        // Rotate across the read paths: plain-scan population, indexed
        // population, and the parallel query executor.
        let qcfg = ov_views::ParallelConfig {
            threads: 4,
            threshold: 64,
        };
        let do_read = || -> Result<usize, String> {
            match i % 4 {
                2 => view
                    .extent_of(sym("Londoner"))
                    .map(|ext| ext.len())
                    .map_err(|e| e.to_string()),
                3 => ov_query::run_query_parallel(
                    &view,
                    &qcfg,
                    "select P.Name from P in Adult where P.Age >= 65",
                )
                .map(|v| std::hint::black_box(v.to_string()).len())
                .map_err(|e| e.to_string()),
                _ => view
                    .extent_of(sym("Adult"))
                    .map(|ext| ext.len())
                    .map_err(|e| e.to_string()),
            }
        };
        let read = catch_unwind(AssertUnwindSafe(|| match &budget {
            Some(b) => ov_query::budget::with(b.clone(), do_read),
            None => do_read(),
        }));
        match read {
            Ok(Ok(len)) => {
                ok_r += 1;
                std::hint::black_box(len);
            }
            Ok(Err(msg)) => {
                err_r += 1;
                std::hint::black_box(msg);
            }
            Err(_) => {
                violation = Some(format!("round {i}: a panic escaped a view read"));
                break;
            }
        }
    }
    std::panic::set_hook(quiet);
    let status = faults::status();
    faults::clear();
    if let Some(msg) = violation {
        return Err(msg);
    }

    println!("rounds: {rounds}  writes ok/err: {ok_w}/{err_w}  reads ok/err: {ok_r}/{err_r}");
    println!("failpoints (site: hits fired):");
    for (site, hits, fired) in status {
        println!("  {site:<28} {hits:>6} {fired:>5}");
    }
    let st = view.stats();
    println!(
        "degradation: stale_serves={} fault_retries={} seq_fallbacks={} recomputations={}",
        st.stale_serves, st.fault_retries, st.seq_fallbacks, st.recomputations
    );

    // Recovery: with faults cleared, one more write must land and the next
    // read must agree exactly with a direct base scan.
    db.write()
        .set_attr(victims[0], sym("Age"), Value::Int(30))
        .map_err(|e| format!("post-chaos write failed: {e}"))?;
    let adults = view
        .extent_of(sym("Adult"))
        .map_err(|e| format!("post-chaos read failed: {e}"))?;
    let got: std::collections::BTreeSet<_> = adults.into_iter().collect();
    let expected: std::collections::BTreeSet<_> = {
        let d = db.read();
        d.deep_extent(person)
            .into_iter()
            .filter(|&o| matches!(eval_attr(&*d, o, sym("Age"), &[]), Ok(Value::Int(a)) if a >= 21))
            .collect()
    };
    if got != expected {
        return Err(format!(
            "post-chaos population diverged from a direct base scan: {} vs {} members",
            got.len(),
            expected.len()
        ));
    }
    println!(
        "recovery: post-chaos population matches a direct base scan ({} members)",
        got.len()
    );
    Ok(())
}

/// The experiment id of the section being printed, so [`tcell`] can record
/// baseline keys without threading it through every experiment function.
static CURRENT_EXP: Mutex<String> = Mutex::new(String::new());

fn header(id: &str, title: &str) {
    *CURRENT_EXP.lock().unwrap() = id.to_string();
    println!("\n## {id} — {title}");
}

/// A timed table cell: records `CURRENT_EXP/label/column` for the baseline
/// pipeline, then formats like [`fmt_ns`].
fn tcell(label: &str, column: &str, ns: f64) -> String {
    baseline::record(&CURRENT_EXP.lock().unwrap(), label, column, ns);
    fmt_ns(ns)
}

fn row(label: &str, cells: &[String]) {
    println!("{label:<34} {}", cells.join("  "));
}

/// 64 accesses through a warm batched [`ov_query::Scan`]: one prefetched
/// batch per op, then bind/run per row — the steady-state shape of a scan's
/// inner loop, which is what E1's per-access columns are about.
fn scan64(scan: &mut ov_query::Scan, rows: &[Value]) {
    scan.begin_batch(0, rows);
    for (i, o) in rows.iter().enumerate() {
        scan.bind(0, o.clone());
        std::hint::black_box(scan.run_row(0, i).unwrap());
    }
}

fn e1_virtual_attributes() {
    header(
        "E1",
        "virtual attributes: stored vs computed access (64 objects/op, warm scan) + full view scan",
    );
    row(
        "n",
        &[
            "stored@base".into(),
            "stored@view".into(),
            "computed@view".into(),
            "scan@view".into(),
        ],
    );
    // The per-access columns measure the batched compiled engine — the
    // engine a population or select scan actually runs per row — with the
    // executor built once and its resolution caches warm, so the cell
    // isolates the paper's §2 question: what does virtual-attribute
    // indirection cost per access, stored vs computed? They are
    // deliberately size-flat (64 accesses/op regardless of N). The
    // scan@view column is a whole `select P.Address from P in Person`
    // through the view and *does* scale with N.
    use ov_oodb::Expr;
    let v = sym("V");
    let prog_stored =
        ov_query::compile_predicate(&Expr::attr(Expr::name("V"), "Age"), &[v]).unwrap();
    let prog_computed =
        ov_query::compile_predicate(&Expr::attr(Expr::name("V"), "Address"), &[v]).unwrap();
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let view = staff_view(&sys, ViewOptions::default());
        let rows: Vec<Value> = person_oids(&sys, 64).into_iter().map(Value::Oid).collect();
        let db = sys.database(sym("Staff")).unwrap();
        let base = {
            let db = db.read();
            let mut scan = ov_query::Scan::new(&prog_stored, &*db);
            time_ns(50, || scan64(&mut scan, &rows))
        };
        let stored_view = {
            let mut scan = ov_query::Scan::new(&prog_stored, &view);
            time_ns(50, || scan64(&mut scan, &rows))
        };
        let computed = {
            let mut scan = ov_query::Scan::new(&prog_computed, &view);
            time_ns(50, || scan64(&mut scan, &rows))
        };
        let scan_view = time_ns(5, || {
            std::hint::black_box(view.query("select P.Address from P in Person").unwrap());
        });
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "stored@base", base),
                tcell(&label, "stored@view", stored_view),
                tcell(&label, "computed@view", computed),
                tcell(&label, "scan@view", scan_view),
            ],
        );
    }
}

fn e2_overloading() {
    header(
        "E2",
        "stored/computed overloading resolves per class (semantic)",
    );
    let sys = people(100);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        attribute Tag in class Person has value "person";
        attribute Tag in class Employee has value "employee";
        attribute Tag in class Manager has value "manager";
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    for class in ["Person", "Employee", "Manager"] {
        let v = view
            .query(&format!("select distinct X.Tag from X in {class}"))
            .unwrap();
        println!("Tag over deep extent of {class:<9} = {v}");
    }
}

fn e3_import_hide() {
    header("E3", "view binding cost: schema-sized, data-independent");
    row("schema classes (1 obj each)", &["bind time".into()]);
    for &classes in &[10usize, 50, 200, 800] {
        let sys = market(classes, 8, 1);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             hide attribute Id in class Item;",
        )
        .unwrap();
        let t = time_ns(10, || {
            std::hint::black_box(def.binder(&sys).bind().unwrap());
        });
        row(
            &classes.to_string(),
            &[tcell(&classes.to_string(), "bind@schema", t)],
        );
    }
    row("data objects (20 classes)", &["bind time".into()]);
    for &objs in &[10usize, 100, 1_000, 10_000] {
        let sys = market(20, 8, objs);
        let def = ViewDef::from_script("create view V; import all classes from database Market;")
            .unwrap();
        let t = time_ns(10, || {
            std::hint::black_box(def.binder(&sys).bind().unwrap());
        });
        row(
            &(objs * 20).to_string(),
            &[tcell(&(objs * 20).to_string(), "bind@data", t)],
        );
    }
}

fn e4_population() {
    header(
        "E4",
        "virtual-class population: recompute vs cache vs incremental",
    );
    row(
        "n",
        &[
            "recompute".into(),
            "cached".into(),
            "upd+read cached".into(),
            "upd+read incr.".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let cached = staff_view(&sys, ViewOptions::default());
        let incremental = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::Incremental)
                .build(),
        );
        let recompute = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        cached.extent_of(sym("Adult")).unwrap();
        incremental.extent_of(sym("Adult")).unwrap();
        let t_rec = time_ns(5, || {
            std::hint::black_box(recompute.extent_of(sym("Adult")).unwrap());
        });
        let t_cache = time_ns(50, || {
            std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
        });
        // Update-heavy pattern: one base write, then one extent read.
        let db = sys.database(sym("Staff")).unwrap();
        let victims = person_oids(&sys, 16);
        let mut i = 0usize;
        let t_upd_cache = time_ns(5, || {
            let o = victims[i % victims.len()];
            i += 1;
            db.write()
                .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
                .unwrap();
            std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
        });
        let t_upd_incr = time_ns(5, || {
            let o = victims[i % victims.len()];
            i += 1;
            db.write()
                .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
                .unwrap();
            std::hint::black_box(incremental.extent_of(sym("Adult")).unwrap());
        });
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "recompute", t_rec),
                tcell(&label, "cached", t_cache),
                tcell(&label, "upd+read cached", t_upd_cache),
                tcell(&label, "upd+read incr", t_upd_incr),
            ],
        );
    }
}

/// E4b — multi-threaded population, enabled by `--threads N` (N > 1): the
/// population scan split across a worker pool, and N reader threads
/// sharing one warm cached view.
fn e4_parallel(threads: usize) {
    if threads <= 1 {
        return;
    }
    header(
        "E4b",
        &format!("population with --threads {threads}: parallel scan + concurrent reads"),
    );
    row(
        "n",
        &[
            "recompute x1".into(),
            format!("recompute x{threads}"),
            format!("{threads} conc. readers"),
        ],
    );
    for &n in &[10_000usize, 100_000] {
        let sys = people(n);
        let seq = staff_view(
            &sys,
            ViewOptions::builder()
                .population(Population::AlwaysRecompute)
                .build(),
        );
        let par = staff_view(
            &sys,
            ViewOptions::builder()
                .population(Population::AlwaysRecompute)
                .parallel(ParallelConfig::with_threads(threads))
                .build(),
        );
        let t_seq = time_ns(5, || {
            std::hint::black_box(seq.extent_of(sym("Adult")).unwrap());
        });
        let t_par = time_ns(5, || {
            std::hint::black_box(par.extent_of(sym("Adult")).unwrap());
        });
        // N readers hammering one warm cached view; the reported cost is
        // wall clock divided by total reads, i.e. amortized ns per read.
        let cached = staff_view(&sys, ViewOptions::default());
        cached.extent_of(sym("Adult")).unwrap();
        let reads_per_thread = 20u32;
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..reads_per_thread {
                        std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
                    }
                });
            }
        });
        let t_conc =
            t0.elapsed().as_nanos() as f64 / (f64::from(reads_per_thread) * threads as f64);
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "recompute x1", t_seq),
                tcell(&label, "recompute xN", t_par),
                tcell(&label, "concurrent readers", t_conc),
            ],
        );
        let st = par.stats();
        assert!(st.parallel_scans > 0, "parallel path did not trigger");
    }
}

fn e5_resolution() {
    header("E5", "attribute resolution (64 objects/op)");
    let sys = people(2_000);
    let oids = person_oids(&sys, 64);
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        attribute Plain in class Person has value "plain";
        "#,
    )
    .unwrap();
    let view = def.binder(&sys).bind().unwrap();
    let t_plain = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Plain"), &[]).unwrap());
        }
    });
    let t_overlap = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
        }
    });
    row(
        "base-chain attribute",
        &[tcell("base-chain", "resolve", t_plain)],
    );
    row(
        "overlap attribute (memberships)",
        &[tcell("overlap", "resolve", t_overlap)],
    );
    row("chain depth (plain schema)", &["resolve+eval".into()]);
    for &depth in &[2usize, 8, 32, 128] {
        let mut db = ov_oodb::Database::new(sym(&format!("HDeep{depth}")));
        let mut parent = db
            .create_class(
                sym(&format!("HD{depth}_0")),
                &[],
                vec![ov_oodb::AttrDef::stored(sym("X"), ov_oodb::Type::Int)],
            )
            .unwrap();
        for i in 1..depth {
            parent = db
                .create_class(sym(&format!("HD{depth}_{i}")), &[parent], vec![])
                .unwrap();
        }
        let oid = db
            .create_object(parent, ov_oodb::Value::tuple([("X", Value::Int(1))]))
            .unwrap();
        let t = time_ns(200, || {
            std::hint::black_box(eval_attr(&db, oid, sym("X"), &[]).unwrap());
        });
        row(
            &depth.to_string(),
            &[tcell(&format!("depth{depth}"), "resolve+eval", t)],
        );
    }
}

/// E5b — attribute resolution under concurrent readers, enabled by
/// `--threads N` (N > 1): N threads resolve overlap attributes against one
/// shared view, exercising the sharded population cache under contention.
fn e5_concurrent(threads: usize) {
    if threads <= 1 {
        return;
    }
    header(
        "E5b",
        &format!("attribute resolution, {threads} concurrent readers (64 objects/op)"),
    );
    let sys = people(2_000);
    let oids = person_oids(&sys, 64);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let t_one = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
        }
    });
    let iters = 50u32;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    for &o in &oids {
                        std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
                    }
                }
            });
        }
    });
    let t_conc = t0.elapsed().as_nanos() as f64 / (f64::from(iters) * threads as f64);
    row("1 thread", &[tcell("overlap", "1 thread", t_one)]);
    row(
        &format!("{threads} threads (amortized)"),
        &[tcell("overlap", "N threads amortized", t_conc)],
    );
    let st = view.stats();
    println!(
        "stats: cache_hits={} cache_misses={} lock_contention={}",
        st.cache_hits, st.cache_misses, st.lock_contention
    );
}

fn e6_inference() {
    header("E6", "hierarchy inference at bind time");
    row(
        "schema classes",
        &["generalization".into(), "behavioral(like)".into()],
    );
    for &classes in &[10usize, 50, 200, 800] {
        let sys = market(classes, 6, 1);
        let picked: Vec<String> = (0..classes)
            .step_by(5)
            .map(|i| format!("Kind{i}"))
            .collect();
        let gen_def = ViewDef::from_script(&format!(
            "create view V; import all classes from database Market; \
             class Grouped includes {};",
            picked.join(", ")
        ))
        .unwrap();
        let like_def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             class On_Sale includes like Sale_Spec;",
        )
        .unwrap();
        let t_gen = time_ns(5, || {
            std::hint::black_box(gen_def.binder(&sys).bind().unwrap());
        });
        let t_like = time_ns(5, || {
            std::hint::black_box(like_def.binder(&sys).bind().unwrap());
        });
        let label = classes.to_string();
        row(
            &label,
            &[
                tcell(&label, "generalization", t_gen),
                tcell(&label, "behavioral-like", t_like),
            ],
        );
    }
}

fn e7_parameterized() {
    header("E7", "parameterized classes: Resident(X)");
    row("n", &["first instantiation".into(), "cached".into()]);
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Staff; \
             class Resident(X) includes (select P from Person where P.City = X);",
        )
        .unwrap();
        let t_first = time_ns(5, || {
            let view = def.binder(&sys).bind().unwrap();
            std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap());
        });
        let view = def.binder(&sys).bind().unwrap();
        view.query(r#"count(Resident("London"))"#).unwrap();
        let t_cached = time_ns(50, || {
            std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap());
        });
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "first instantiation", t_first),
                tcell(&label, "cached", t_cached),
            ],
        );
    }
}

fn e8_upward_and_schizophrenia() {
    header(
        "E8",
        "upward inheritance + schizophrenia policies (semantic)",
    );
    let sys = people(200);
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        "#,
    )
    .unwrap();
    // A person who is both rich and senior: find one.
    let strict = def
        .binder(&sys)
        .options(ViewOptions::builder().policy(ConflictPolicy::Error).build())
        .bind()
        .unwrap();
    let overlap = strict
        .query("count((select P from P in Rich where P in Senior))")
        .unwrap();
    println!("objects in Rich ∩ Senior: {overlap}");
    let both = strict
        .query("select P from P in Rich where P in Senior")
        .unwrap();
    if let Some(Value::Oid(o)) = both.as_set().and_then(|s| s.iter().next().cloned()) {
        let e = eval_attr(&strict, o, sym("Print"), &[]);
        println!(
            "policy=Error            → {:?}",
            e.err().map(|x| x.to_string())
        );
        let creation = def.binder(&sys).bind().unwrap();
        println!(
            "policy=CreationOrder    → {}",
            eval_attr(&creation, o, sym("Print"), &[]).unwrap()
        );
        let pri = def
            .binder(&sys)
            .options(
                ViewOptions::builder()
                    .policy(ConflictPolicy::Priority(vec![sym("Senior")]))
                    .build(),
            )
            .bind()
            .unwrap();
        println!(
            "policy=Priority(Senior) → {}",
            eval_attr(&pri, o, sym("Print"), &[]).unwrap()
        );
    }
}

fn e9_identity() {
    header(
        "E9",
        "imaginary identity: the two 'seemingly equivalent' queries",
    );
    let nested = "count((select F from F in Family \
                  where F in (select G from G in Family where G.Husband.Age < 50)))";
    let flat = "count((select F from F in Family where F.Husband.Age < 50))";
    row(
        "n",
        &[
            "flat".into(),
            "nested@table".into(),
            "nested@fresh".into(),
            "pop time (table)".into(),
        ],
    );
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let table = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        let fresh = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .identity_mode(IdentityMode::Fresh)
                .build(),
        );
        let a = table.query(flat).unwrap();
        let b = table.query(nested).unwrap();
        let c = fresh.query(nested).unwrap();
        let t = time_ns(5, || {
            std::hint::black_box(table.extent_of(sym("Family")).unwrap());
        });
        row(
            &n.to_string(),
            &[
                a.to_string(),
                b.to_string(),
                c.to_string(),
                tcell(&n.to_string(), "pop time table", t),
            ],
        );
    }
    println!("(the paper's claim: flat = nested under identity tables; fresh oids collapse to 0)");
}

fn e10_value_to_object() {
    header(
        "E10",
        "Example 5: value→object conversion with sharing (semantic)",
    );
    let sys = people(1_000);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Address includes imaginary
            (select [City: P.City, Street: P.Street] from P in Person);
        attribute Location in class Person has value
            (select the A from A in Address
             where A.City = self.City and A.Street = self.Street);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let people_count = view.query("count(Person)").unwrap();
    let addr_count = view.query("count(Address)").unwrap();
    println!("persons: {people_count}, distinct shared address objects: {addr_count}");
    let t = time_ns(20, || {
        let oids = person_oids(&sys, 32);
        for o in oids {
            std::hint::black_box(eval_attr(&view, o, sym("Location"), &[]).unwrap());
        }
    });
    row(
        "`select the` lookup (32 objs/op)",
        &[tcell("lookup32", "select-the", t)],
    );
}

fn e11_churn() {
    header("E11", "Example 6: identity churn under address updates");
    const POOR: &str = r#"
        create view Poor;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, CAddress: P.PAddress, Policy: P]
             from P in Policy);
    "#;
    const FIXED: &str = r#"
        create view Fixed;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, Policy: P] from P in Policy);
        attribute CAddress in class Client has value self.Policy.PAddress;
    "#;
    let updates = 200usize;
    row(
        "design",
        &[
            "clients".into(),
            format!("identity entries after {updates} updates"),
            "churn rate".into(),
        ],
    );
    for (label, script) in [("poor", POOR), ("fixed", FIXED)] {
        let sys = insurance(1_000);
        let view = ViewDef::from_script(script)
            .unwrap()
            .binder(&sys)
            .bind()
            .unwrap();
        view.extent_of(sym("Client")).unwrap();
        let baseline = view.identity_table_len(sym("Client"));
        let db = sys.database(sym("Insurance")).unwrap();
        let policies = {
            let d = db.read();
            d.deep_extent(d.schema.class_by_name(sym("Policy")).unwrap())
        };
        for i in 0..updates {
            let p = policies[i % policies.len()];
            db.write()
                .set_attr(p, sym("PAddress"), Value::str(&format!("addr {i}")))
                .unwrap();
            view.extent_of(sym("Client")).unwrap();
        }
        let after = view.identity_table_len(sym("Client"));
        row(
            label,
            &[
                baseline.to_string(),
                after.to_string(),
                format!(
                    "{:.2} new identities/update",
                    (after - baseline) as f64 / updates as f64
                ),
            ],
        );
    }
    println!("(the paper's claim: the poor design makes every move a new client)");
}

fn e13_indexes() {
    header(
        "E13",
        "index pushdown for specialization populations (extension)",
    );
    row(
        "n",
        &["scan".into(), "indexed".into(), "result size".into()],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut results = Vec::new();
        let mut size = 0usize;
        for indexed in [false, true] {
            let sys = people(n);
            if indexed {
                let db = sys.database(sym("Staff")).unwrap();
                let mut db = db.write();
                let person = db.schema.class_by_name(sym("Person")).unwrap();
                db.create_index(person, sym("City")).unwrap();
            }
            let view = ViewDef::from_script(
                r#"
                create view V;
                import all classes from database Staff;
                class Londoner includes
                    (select P from Person where P.City = "London");
                "#,
            )
            .unwrap()
            .binder(&sys)
            .options(
                ViewOptions::builder()
                    .materialization(Materialization::AlwaysRecompute)
                    .build(),
            )
            .bind()
            .unwrap();
            size = view.extent_of(sym("Londoner")).unwrap().len();
            let t = time_ns(5, || {
                std::hint::black_box(view.extent_of(sym("Londoner")).unwrap());
            });
            results.push(tcell(
                &n.to_string(),
                if indexed { "indexed" } else { "scan" },
                t,
            ));
        }
        results.push(size.to_string());
        row(&n.to_string(), &results);
    }
}

fn e14_compiled_engine() {
    header(
        "E14",
        "compiled predicate engine vs tree-walking interpreter (extension)",
    );
    row(
        "n",
        &[
            "compiled".into(),
            "interp".into(),
            "speedup".into(),
            "result size".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let view = ViewDef::from_script(
            r#"
            create view V;
            import all classes from database Staff;
            class Comfortable includes
                (select P from Person where P.Income >= 100000 and P.Age >= 30);
            "#,
        )
        .unwrap()
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        )
        .bind()
        .unwrap();
        let mut times = Vec::new();
        let mut sizes = Vec::new();
        for mode in [ov_query::EngineMode::Compiled, ov_query::EngineMode::Interp] {
            ov_query::with_engine_mode(mode, || {
                sizes.push(view.extent_of(sym("Comfortable")).unwrap().len());
                times.push(time_ns(5, || {
                    std::hint::black_box(view.extent_of(sym("Comfortable")).unwrap());
                }));
            });
        }
        assert_eq!(sizes[0], sizes[1], "engines must agree on the population");
        row(
            &n.to_string(),
            &[
                tcell(&n.to_string(), "compiled", times[0]),
                tcell(&n.to_string(), "interp", times[1]),
                format!("{:.2}x", times[1] / times[0]),
                sizes[0].to_string(),
            ],
        );
    }
}

fn e15_stacked_views() {
    header(
        "E15",
        "views over views: delta propagation through a 3-deep stack (extension)",
    );
    row(
        "n",
        &[
            "delta".into(),
            "full".into(),
            "speedup".into(),
            "result size".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut times = Vec::new();
        let mut size = 0usize;
        for incremental in [true, false] {
            let sys = people(n);
            // Staff -> Adults(Adult) -> Earners(Rich) -> Top(Elite): the
            // bound Top view carries all three levels, so one base write
            // must cross three population definitions to reach Elite.
            let adults = ViewDef::from_script(
                r#"
                create view Adults;
                import all classes from database Staff;
                class Adult includes (select P from Person where P.Age >= 21);
                "#,
            )
            .unwrap();
            let earners = ViewDef::from_script(
                r#"
                create view Earners;
                import all classes from view Adults;
                class Rich includes (select A from Adult where A.Income >= 100000);
                "#,
            )
            .unwrap();
            let top = ViewDef::from_script(
                r#"
                create view Top;
                import all classes from view Earners;
                class Elite includes (select R from Rich where R.Age >= 60);
                "#,
            )
            .unwrap();
            let view = top
                .binder(&sys)
                .over_all([&adults, &earners])
                .options(
                    ViewOptions::builder()
                        .materialization(if incremental {
                            Materialization::Incremental
                        } else {
                            Materialization::AlwaysRecompute
                        })
                        .build(),
                )
                .bind()
                .unwrap();
            // Warm every level, then refresh after a single base write.
            size = view.extent_of(sym("Elite")).unwrap().len();
            let db = sys.database(sym("Staff")).unwrap();
            let person = db.read().schema.class_by_name(sym("Person")).unwrap();
            let victim = db.read().deep_extent(person)[0];
            let recomputes_before = view.stats().recomputations;
            let mut flip = 0i64;
            let t = time_ns(5, || {
                flip += 1;
                db.write()
                    .set_attr(victim, sym("Age"), Value::Int(61 + (flip % 2)))
                    .unwrap();
                std::hint::black_box(view.extent_of(sym("Elite")).unwrap());
            });
            if incremental {
                // The write must propagate level by level as delta
                // retests of the one changed oid; a full recomputation
                // anywhere in the stack is a regression.
                assert_eq!(
                    view.stats().recomputations,
                    recomputes_before,
                    "E15: stacked delta refresh fell back to FullRecompute"
                );
            }
            times.push(t);
        }
        row(
            &n.to_string(),
            &[
                tcell(&n.to_string(), "delta", times[0]),
                tcell(&n.to_string(), "full", times[1]),
                format!("{:.2}x", times[1] / times[0]),
                size.to_string(),
            ],
        );
    }
}

fn e16_batched_execution() {
    header(
        "E16",
        "batched bytecode execution: columnar batches vs row-at-a-time vs interpreter (extension)",
    );
    row(
        "n",
        &[
            "batched".into(),
            "row".into(),
            "interp".into(),
            "speedup".into(),
            "result size".into(),
        ],
    );
    // The same select, with a computed attribute in the projection and a
    // stored attribute in the predicate, run three ways through the view:
    // the default batched compiled engine (prefetched columnar chunks of
    // `batch_rows()` rows), the compiled engine with batching disabled
    // (batch width 0: per-row locks and lookups), and the tree-walking
    // interpreter. All three must produce the same set; `speedup` is
    // interp/batched.
    let q = "select P.Address from P in Person where P.Age >= 21";
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let view = staff_view(&sys, ViewOptions::default());
        let batched_result = view.query(q).unwrap();
        let row_result = ov_query::with_batch_rows(0, || view.query(q).unwrap());
        let interp_result =
            ov_query::with_engine_mode(ov_query::EngineMode::Interp, || view.query(q).unwrap());
        assert_eq!(
            batched_result, row_result,
            "E16: batching changed the result"
        );
        assert_eq!(batched_result, interp_result, "E16: engines disagree");
        let size = batched_result.as_set().map_or(0, |s| s.len());
        let t_batched = time_ns(5, || {
            std::hint::black_box(view.query(q).unwrap());
        });
        let t_row = ov_query::with_batch_rows(0, || {
            time_ns(5, || {
                std::hint::black_box(view.query(q).unwrap());
            })
        });
        let t_interp = ov_query::with_engine_mode(ov_query::EngineMode::Interp, || {
            time_ns(5, || {
                std::hint::black_box(view.query(q).unwrap());
            })
        });
        row(
            &n.to_string(),
            &[
                tcell(&n.to_string(), "batched", t_batched),
                tcell(&n.to_string(), "row", t_row),
                tcell(&n.to_string(), "interp", t_interp),
                format!("{:.2}x", t_interp / t_batched),
                size.to_string(),
            ],
        );
    }
}

fn e17_profiling_overhead() {
    header(
        "E17",
        "observability plane: profiling overhead, workload registry, statistics (extension)",
    );
    row(
        "n",
        &[
            "off".into(),
            "on".into(),
            "overhead".into(),
            "fingerprints".into(),
        ],
    );
    // The same view query timed with the profiler disabled (the production
    // default: the per-query cost is one relaxed atomic load) and enabled
    // (fingerprinting, workload aggregation, actuals collection, sampled
    // statistics sketches). The two runs must agree on the result; the
    // `overhead` column is the enabled/disabled ratio.
    let was_profiling = ov_oodb::profiling_enabled();
    let q = "select P.Address from P in Person where P.Age >= 21";
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let view = staff_view(&sys, ViewOptions::default());
        ov_oodb::set_profiling(false);
        let off_result = view.query(q).unwrap();
        let t_off = time_ns(5, || {
            std::hint::black_box(view.query(q).unwrap());
        });
        ov_oodb::set_profiling(true);
        let on_result = view.query(q).unwrap();
        assert_eq!(off_result, on_result, "E17: profiling changed the result");
        let t_on = time_ns(5, || {
            std::hint::black_box(view.query(q).unwrap());
        });
        ov_oodb::set_profiling(false);
        // The profiled runs must have fed the observability plane: the
        // query's fingerprint is registered (without clearing the global
        // registry — under `--workload` it holds the whole run so far),
        // and the scanned class has attribute sketches.
        let (fp, _) = ov_query::fingerprint_query(q).expect("E17: query parses");
        let entry = ov_oodb::workload()
            .snapshot()
            .into_iter()
            .find(|(f, _)| *f == fp)
            .map(|(_, e)| e)
            .expect("E17: profiled runs must register the query's fingerprint");
        assert!(entry.calls.get() >= 6, "E17: warm run + 5 timed iterations");
        let stats = ov_oodb::stats().snapshot();
        let person = stats
            .classes
            .get(&sym("Person"))
            .expect("E17: profiled scans must feed Person statistics");
        assert!(
            !person.attrs.is_empty(),
            "E17: sampled batches must sketch at least one attribute"
        );
        let fingerprints = ov_oodb::workload().len();
        row(
            &n.to_string(),
            &[
                tcell(&n.to_string(), "off", t_off),
                tcell(&n.to_string(), "on", t_on),
                format!("{:.2}x", t_on / t_off),
                fingerprints.to_string(),
            ],
        );
    }
    ov_oodb::set_profiling(was_profiling);
}

/// E18: what durability costs. Per-commit latency of inserts and updates
/// under each durability level, then the other side of the bargain:
/// recovery time for a WAL-only restart, and checkpoint time (after which
/// restarts ride the snapshot instead of replaying history).
fn e18_durability(args: &Args) {
    use ov_oodb::{AttrDef, Database, Durability, Type};

    header(
        "E18",
        "durability: commit latency, WAL recovery, checkpoint under None / Wal / WalSync (extension)",
    );
    row(
        "level",
        &[
            "insert".into(),
            "update".into(),
            "recovery".into(),
            "objects".into(),
            "checkpoint".into(),
        ],
    );
    const N: u32 = 500;
    let root = match &args.data_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("ov-e18-{}", std::process::id())),
    };
    let keep = args.data_dir.is_some();
    let levels = match args.durability {
        Some(level) => vec![level],
        None => vec![Durability::None, Durability::Wal, Durability::WalSync],
    };
    for level in levels {
        let dir = root.join(format!("e18-{}", level.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
        let (t_insert, t_update) = {
            let mut db = Database::open(sym("E18"), &dir, level).unwrap();
            let class = db
                .create_class(
                    sym("Person"),
                    &[],
                    vec![AttrDef::stored(sym("Age"), Type::Int)],
                )
                .unwrap();
            let mut i = 0i64;
            let t_insert = time_ns(N, || {
                i += 1;
                db.create_object(class, Value::tuple([(sym("Age"), Value::Int(i % 90))]))
                    .unwrap();
            });
            let oids = db.store.sorted_oids();
            let mut j = 0usize;
            let t_update = time_ns(N, || {
                j += 1;
                db.set_attr(
                    oids[j % oids.len()],
                    sym("Age"),
                    Value::Int((j % 90) as i64),
                )
                .unwrap();
            });
            (t_insert, t_update)
        };
        // Recovery replays the whole history from the WAL.
        let t0 = std::time::Instant::now();
        let db = Database::open(sym("E18"), &dir, level).unwrap();
        let t_recover = t0.elapsed().as_nanos() as f64;
        let objects = db.store.len();
        let t1 = std::time::Instant::now();
        db.checkpoint().unwrap();
        let t_checkpoint = t1.elapsed().as_nanos() as f64;
        drop(db);
        let label = level.as_str();
        row(
            label,
            &[
                tcell(label, "insert", t_insert),
                tcell(label, "update", t_update),
                tcell(label, "recovery", t_recover),
                objects.to_string(),
                tcell(label, "checkpoint", t_checkpoint),
            ],
        );
        if !keep {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    if keep {
        println!("# durable stores kept under {}", root.display());
    }
}

fn e12_relational() {
    header("E12", "object views of relational data");
    row(
        "rows",
        &[
            "stage".into(),
            "populate".into(),
            "query".into(),
            "restage".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 50_000] {
        let rdb = payroll(n, 16);
        let t_stage = time_ns(3, || {
            std::hint::black_box(ov_relational::bridge::stage(&rdb).unwrap());
        });
        let (sys, _) = ov_relational::bridge::stage(&rdb).unwrap();
        let view = ov_relational::bridge::object_view(&rdb, &sys).unwrap();
        let t_pop = time_ns(3, || {
            std::hint::black_box(view.extent_of(sym("Emp")).unwrap());
        });
        view.extent_of(sym("Emp")).unwrap();
        let t_query = time_ns(3, || {
            std::hint::black_box(
                view.query("count((select E from E in Emp where E.Salary > 100000))")
                    .unwrap(),
            );
        });
        let t_restage = time_ns(3, || {
            ov_relational::bridge::restage(&rdb, &sys).unwrap();
        });
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "stage", t_stage),
                tcell(&label, "populate", t_pop),
                tcell(&label, "query", t_query),
                tcell(&label, "restage", t_restage),
            ],
        );
    }
}

fn e19_planner() {
    header(
        "E19",
        "cost-based planner vs fixed heuristics: strategy selection from statistics (extension)",
    );
    row(
        "n",
        &[
            "uniform-on".into(),
            "uniform-off".into(),
            "skewed-on".into(),
            "skewed-off".into(),
            "join-on".into(),
            "join-off".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        // A fresh statistics plane and plan cache per size: the sketches
        // are keyed by class name, so leftovers from other experiments
        // (or the previous `n`) would skew the estimates.
        ov_oodb::stats::stats().clear();
        ov_query::clear_plan_cache();
        let sys = people(n);
        let db = sys.database(sym("Staff")).unwrap();
        // A small dimension class for the multi-binding join: 16 rows,
        // `Id` 0..16, so `P.Kids = D.Id` matches exactly one `D` per
        // person. The query below binds `D` *first*, which is the worst
        // order; the planner must discover that from the statistics.
        {
            let mut d = db.write();
            let person = d.schema.class_by_name(sym("Person")).unwrap();
            d.create_index(person, sym("Name")).unwrap();
            d.create_index(person, sym("Sex")).unwrap();
            let dept = d
                .create_class(
                    sym("Dept"),
                    &[],
                    vec![ov_oodb::AttrDef::stored(sym("Id"), ov_oodb::Type::Int)],
                )
                .unwrap();
            for i in 0..16 {
                d.create_object(
                    dept,
                    Value::Tuple(ov_oodb::Tuple::from_fields([(sym("Id"), Value::Int(i))])),
                )
                .unwrap();
            }
        }
        // Warm the statistics: profiled sequential scans sample the
        // prefetched columns (Name, Age, Sex, Kids) into the sketches.
        // Planner off so the eq probes don't take the index-pushdown
        // path, which bypasses the sampling loop.
        let was_profiling = ov_oodb::metrics::profiling_enabled();
        ov_oodb::metrics::set_profiling(true);
        ov_query::with_planner(false, || {
            let d = db.read();
            ov_query::run_query(&*d, "select P.Name from P in Person where P.Age >= 0").unwrap();
            ov_query::run_query(&*d, "select P.Kids from P in Person where P.Sex = \"none\"")
                .unwrap();
            ov_query::run_query(&*d, "select D.Id from D in Dept where D.Id >= 0").unwrap();
        });
        ov_oodb::metrics::set_profiling(was_profiling);

        // uniform: unique-key equality probe. The planner reads NDV ≈
        // cardinality from the sketch and picks the `Name` index; the
        // fixed heuristic (planner off) runs the compiled seq scan.
        let uniform = format!(
            "select P.Name from P in Person where P.Name = \"p{}\"",
            n / 2
        );
        // skewed: 2-NDV equality leg. The planner vetoes the `Sex` index
        // (half the extent behind one posting list) and stays sequential,
        // so both cells should be within noise of each other.
        let skewed = "select P.Name from P in Person where P.Sex = \"male\" and P.Age >= 90";
        // join: selective unique-key leg on `P`, cross leg to the 16-row
        // dimension, written in the worst binding order. The planner
        // reorders `P` first and evaluates the `Name` probe at depth 0;
        // planner off runs the compiled nested loop in textual order.
        let join = format!(
            "select P.Name from D in Dept, P in Person where P.Name = \"p{}\" and P.Kids = D.Id",
            n / 2
        );
        let mut cells = Vec::new();
        for q in [uniform.as_str(), skewed, join.as_str()] {
            let mut results = Vec::new();
            let mut times = Vec::new();
            for on in [true, false] {
                ov_query::with_planner(on, || {
                    let d = db.read();
                    results.push(ov_query::run_query(&*d, q).unwrap());
                    times.push(time_ns(if n >= 100_000 { 3 } else { 5 }, || {
                        std::hint::black_box(ov_query::run_query(&*d, q).unwrap());
                    }));
                });
            }
            assert_eq!(results[0], results[1], "planner on/off must agree on {q}");
            times.truncate(2);
            cells.push(times);
        }
        let label = n.to_string();
        row(
            &label,
            &[
                tcell(&label, "uniform-on", cells[0][0]),
                tcell(&label, "uniform-off", cells[0][1]),
                tcell(&label, "skewed-on", cells[1][0]),
                tcell(&label, "skewed-off", cells[1][1]),
                tcell(&label, "join-on", cells[2][0]),
                tcell(&label, "join-off", cells[2][1]),
            ],
        );
        // Misestimate canary: on the uniform workload the estimate must
        // stay within 10x of the actual row count, or the drift eviction
        // threshold would be churning the plan cache on a well-behaved
        // query. CI greps for the MISESTIMATE marker.
        let d = db.read();
        let (val, trace) = ov_query::run_query_traced(&*d, &uniform).unwrap();
        let actual = match &val {
            Value::Set(s) => s.len() as u64,
            Value::List(l) => l.len() as u64,
            _ => 1,
        };
        match &trace.planner {
            Some(p) => {
                let est = p.est_rows.max(1);
                let act = actual.max(1);
                let ratio = est.max(act) as f64 / est.min(act) as f64;
                let verdict = if ratio > 10.0 { "MISESTIMATE" } else { "ok" };
                println!(
                    "E19/canary/{n} est={} actual={actual} ratio={ratio:.1}x {verdict}",
                    p.est_rows
                );
            }
            None => println!("E19/canary/{n} no plan recorded MISESTIMATE"),
        }
    }
}
