//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p ov-bench --bin harness`
//!
//! `--threads N` (default 1) additionally runs the multi-threaded read
//! experiments in E4 and E5: population scans split across `N` workers,
//! and `N` concurrent reader threads sharing one view.
//!
//! `--metrics FILE` writes, after all experiments, a JSON snapshot of the
//! process-wide metrics registry (store mutations, journal delta/gap
//! counts, index lookups, view population path counters and latency
//! histograms) to `FILE`.
//!
//! Each section corresponds to an experiment id (E1–E12) in EXPERIMENTS.md,
//! which maps them back to the paper's sections. Timings are coarse
//! wall-clock means (use the Criterion benches for statistically careful
//! numbers); the semantic rows are exact.

use ov_bench::*;
use ov_oodb::{sym, ConflictPolicy, Value};
use ov_query::eval_attr;
use ov_views::{IdentityMode, Materialization, ParallelConfig, Population, ViewDef, ViewOptions};

fn main() {
    let args = parse_args();
    let threads = args.threads;
    println!("# Objects-and-Views experiment harness");
    println!("# (sections correspond to EXPERIMENTS.md)");
    if threads > 1 {
        println!("# --threads {threads}: E4/E5 include multi-threaded runs");
    }
    e1_virtual_attributes();
    e2_overloading();
    e3_import_hide();
    e4_population();
    e4_parallel(threads);
    e5_resolution();
    e5_concurrent(threads);
    e6_inference();
    e7_parameterized();
    e8_upward_and_schizophrenia();
    e9_identity();
    e10_value_to_object();
    e11_churn();
    e12_relational();
    e13_indexes();
    if let Some(path) = &args.metrics {
        let json = ov_oodb::registry().snapshot().to_json();
        match std::fs::write(path, &json) {
            Ok(()) => println!("\n# metrics written to {path}"),
            Err(e) => {
                eprintln!("error writing metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\nall experiments completed.");
}

struct Args {
    threads: usize,
    metrics: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        threads: 1,
        metrics: None,
    };
    let usage = || -> ! {
        eprintln!("usage: harness [--threads N] [--metrics FILE]");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                out.threads = std::cmp::max(n, 1);
            }
            "--metrics" => out.metrics = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    out
}

fn header(id: &str, title: &str) {
    println!("\n## {id} — {title}");
}

fn row(label: &str, cells: &[String]) {
    println!("{label:<34} {}", cells.join("  "));
}

fn e1_virtual_attributes() {
    header(
        "E1",
        "virtual attributes: stored vs computed access (64 objects/op)",
    );
    let (age, address, _) = bench_syms();
    row(
        "n",
        &[
            "stored@base".into(),
            "stored@view".into(),
            "computed@view".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let view = staff_view(&sys, ViewOptions::default());
        let oids = person_oids(&sys, 64);
        let db = sys.database(sym("Staff")).unwrap();
        let base = {
            let db = db.read();
            time_ns(50, || {
                for &o in &oids {
                    std::hint::black_box(eval_attr(&*db, o, age, &[]).unwrap());
                }
            })
        };
        let stored_view = time_ns(50, || {
            for &o in &oids {
                std::hint::black_box(eval_attr(&view, o, age, &[]).unwrap());
            }
        });
        let computed = time_ns(50, || {
            for &o in &oids {
                std::hint::black_box(eval_attr(&view, o, address, &[]).unwrap());
            }
        });
        row(
            &n.to_string(),
            &[fmt_ns(base), fmt_ns(stored_view), fmt_ns(computed)],
        );
    }
}

fn e2_overloading() {
    header(
        "E2",
        "stored/computed overloading resolves per class (semantic)",
    );
    let sys = people(100);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        attribute Tag in class Person has value "person";
        attribute Tag in class Employee has value "employee";
        attribute Tag in class Manager has value "manager";
        "#,
    )
    .unwrap()
    .bind(&sys)
    .unwrap();
    for class in ["Person", "Employee", "Manager"] {
        let v = view
            .query(&format!("select distinct X.Tag from X in {class}"))
            .unwrap();
        println!("Tag over deep extent of {class:<9} = {v}");
    }
}

fn e3_import_hide() {
    header("E3", "view binding cost: schema-sized, data-independent");
    row("schema classes (1 obj each)", &["bind time".into()]);
    for &classes in &[10usize, 50, 200, 800] {
        let sys = market(classes, 8, 1);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             hide attribute Id in class Item;",
        )
        .unwrap();
        let t = time_ns(10, || {
            std::hint::black_box(def.bind(&sys).unwrap());
        });
        row(&classes.to_string(), &[fmt_ns(t)]);
    }
    row("data objects (20 classes)", &["bind time".into()]);
    for &objs in &[10usize, 100, 1_000, 10_000] {
        let sys = market(20, 8, objs);
        let def = ViewDef::from_script("create view V; import all classes from database Market;")
            .unwrap();
        let t = time_ns(10, || {
            std::hint::black_box(def.bind(&sys).unwrap());
        });
        row(&(objs * 20).to_string(), &[fmt_ns(t)]);
    }
}

fn e4_population() {
    header(
        "E4",
        "virtual-class population: recompute vs cache vs incremental",
    );
    row(
        "n",
        &[
            "recompute".into(),
            "cached".into(),
            "upd+read cached".into(),
            "upd+read incr.".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let sys = people(n);
        let cached = staff_view(&sys, ViewOptions::default());
        let incremental = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::Incremental)
                .build(),
        );
        let recompute = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        cached.extent_of(sym("Adult")).unwrap();
        incremental.extent_of(sym("Adult")).unwrap();
        let t_rec = time_ns(5, || {
            std::hint::black_box(recompute.extent_of(sym("Adult")).unwrap());
        });
        let t_cache = time_ns(50, || {
            std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
        });
        // Update-heavy pattern: one base write, then one extent read.
        let db = sys.database(sym("Staff")).unwrap();
        let victims = person_oids(&sys, 16);
        let mut i = 0usize;
        let t_upd_cache = time_ns(5, || {
            let o = victims[i % victims.len()];
            i += 1;
            db.write()
                .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
                .unwrap();
            std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
        });
        let t_upd_incr = time_ns(5, || {
            let o = victims[i % victims.len()];
            i += 1;
            db.write()
                .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
                .unwrap();
            std::hint::black_box(incremental.extent_of(sym("Adult")).unwrap());
        });
        row(
            &n.to_string(),
            &[
                fmt_ns(t_rec),
                fmt_ns(t_cache),
                fmt_ns(t_upd_cache),
                fmt_ns(t_upd_incr),
            ],
        );
    }
}

/// E4b — multi-threaded population, enabled by `--threads N` (N > 1): the
/// population scan split across a worker pool, and N reader threads
/// sharing one warm cached view.
fn e4_parallel(threads: usize) {
    if threads <= 1 {
        return;
    }
    header(
        "E4b",
        &format!("population with --threads {threads}: parallel scan + concurrent reads"),
    );
    row(
        "n",
        &[
            "recompute x1".into(),
            format!("recompute x{threads}"),
            format!("{threads} conc. readers"),
        ],
    );
    for &n in &[10_000usize, 100_000] {
        let sys = people(n);
        let seq = staff_view(
            &sys,
            ViewOptions::builder()
                .population(Population::AlwaysRecompute)
                .build(),
        );
        let par = staff_view(
            &sys,
            ViewOptions::builder()
                .population(Population::AlwaysRecompute)
                .parallel(ParallelConfig::with_threads(threads))
                .build(),
        );
        let t_seq = time_ns(5, || {
            std::hint::black_box(seq.extent_of(sym("Adult")).unwrap());
        });
        let t_par = time_ns(5, || {
            std::hint::black_box(par.extent_of(sym("Adult")).unwrap());
        });
        // N readers hammering one warm cached view; the reported cost is
        // wall clock divided by total reads, i.e. amortized ns per read.
        let cached = staff_view(&sys, ViewOptions::default());
        cached.extent_of(sym("Adult")).unwrap();
        let reads_per_thread = 20u32;
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..reads_per_thread {
                        std::hint::black_box(cached.extent_of(sym("Adult")).unwrap());
                    }
                });
            }
        });
        let t_conc =
            t0.elapsed().as_nanos() as f64 / (f64::from(reads_per_thread) * threads as f64);
        row(
            &n.to_string(),
            &[fmt_ns(t_seq), fmt_ns(t_par), fmt_ns(t_conc)],
        );
        let st = par.stats();
        assert!(st.parallel_scans > 0, "parallel path did not trigger");
    }
}

fn e5_resolution() {
    header("E5", "attribute resolution (64 objects/op)");
    let sys = people(2_000);
    let oids = person_oids(&sys, 64);
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        attribute Plain in class Person has value "plain";
        "#,
    )
    .unwrap();
    let view = def.bind(&sys).unwrap();
    let t_plain = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Plain"), &[]).unwrap());
        }
    });
    let t_overlap = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
        }
    });
    row("base-chain attribute", &[fmt_ns(t_plain)]);
    row("overlap attribute (memberships)", &[fmt_ns(t_overlap)]);
    row("chain depth (plain schema)", &["resolve+eval".into()]);
    for &depth in &[2usize, 8, 32, 128] {
        let mut db = ov_oodb::Database::new(sym(&format!("HDeep{depth}")));
        let mut parent = db
            .create_class(
                sym(&format!("HD{depth}_0")),
                &[],
                vec![ov_oodb::AttrDef::stored(sym("X"), ov_oodb::Type::Int)],
            )
            .unwrap();
        for i in 1..depth {
            parent = db
                .create_class(sym(&format!("HD{depth}_{i}")), &[parent], vec![])
                .unwrap();
        }
        let oid = db
            .create_object(parent, ov_oodb::Value::tuple([("X", Value::Int(1))]))
            .unwrap();
        let t = time_ns(200, || {
            std::hint::black_box(eval_attr(&db, oid, sym("X"), &[]).unwrap());
        });
        row(&depth.to_string(), &[fmt_ns(t)]);
    }
}

/// E5b — attribute resolution under concurrent readers, enabled by
/// `--threads N` (N > 1): N threads resolve overlap attributes against one
/// shared view, exercising the sharded population cache under contention.
fn e5_concurrent(threads: usize) {
    if threads <= 1 {
        return;
    }
    header(
        "E5b",
        &format!("attribute resolution, {threads} concurrent readers (64 objects/op)"),
    );
    let sys = people(2_000);
    let oids = person_oids(&sys, 64);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        "#,
    )
    .unwrap()
    .bind(&sys)
    .unwrap();
    let t_one = time_ns(50, || {
        for &o in &oids {
            std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
        }
    });
    let iters = 50u32;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    for &o in &oids {
                        std::hint::black_box(eval_attr(&view, o, sym("Print"), &[]).ok());
                    }
                }
            });
        }
    });
    let t_conc = t0.elapsed().as_nanos() as f64 / (f64::from(iters) * threads as f64);
    row("1 thread", &[fmt_ns(t_one)]);
    row(&format!("{threads} threads (amortized)"), &[fmt_ns(t_conc)]);
    let st = view.stats();
    println!(
        "stats: cache_hits={} cache_misses={} lock_contention={}",
        st.cache_hits, st.cache_misses, st.lock_contention
    );
}

fn e6_inference() {
    header("E6", "hierarchy inference at bind time");
    row(
        "schema classes",
        &["generalization".into(), "behavioral(like)".into()],
    );
    for &classes in &[10usize, 50, 200, 800] {
        let sys = market(classes, 6, 1);
        let picked: Vec<String> = (0..classes)
            .step_by(5)
            .map(|i| format!("Kind{i}"))
            .collect();
        let gen_def = ViewDef::from_script(&format!(
            "create view V; import all classes from database Market; \
             class Grouped includes {};",
            picked.join(", ")
        ))
        .unwrap();
        let like_def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             class On_Sale includes like Sale_Spec;",
        )
        .unwrap();
        let t_gen = time_ns(5, || {
            std::hint::black_box(gen_def.bind(&sys).unwrap());
        });
        let t_like = time_ns(5, || {
            std::hint::black_box(like_def.bind(&sys).unwrap());
        });
        row(&classes.to_string(), &[fmt_ns(t_gen), fmt_ns(t_like)]);
    }
}

fn e7_parameterized() {
    header("E7", "parameterized classes: Resident(X)");
    row("n", &["first instantiation".into(), "cached".into()]);
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Staff; \
             class Resident(X) includes (select P from Person where P.City = X);",
        )
        .unwrap();
        let t_first = time_ns(5, || {
            let view = def.bind(&sys).unwrap();
            std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap());
        });
        let view = def.bind(&sys).unwrap();
        view.query(r#"count(Resident("London"))"#).unwrap();
        let t_cached = time_ns(50, || {
            std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap());
        });
        row(&n.to_string(), &[fmt_ns(t_first), fmt_ns(t_cached)]);
    }
}

fn e8_upward_and_schizophrenia() {
    header(
        "E8",
        "upward inheritance + schizophrenia policies (semantic)",
    );
    let sys = people(200);
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        "#,
    )
    .unwrap();
    // A person who is both rich and senior: find one.
    let strict = def
        .bind_with(
            &sys,
            ViewOptions::builder().policy(ConflictPolicy::Error).build(),
        )
        .unwrap();
    let overlap = strict
        .query("count((select P from P in Rich where P in Senior))")
        .unwrap();
    println!("objects in Rich ∩ Senior: {overlap}");
    let both = strict
        .query("select P from P in Rich where P in Senior")
        .unwrap();
    if let Some(Value::Oid(o)) = both.as_set().and_then(|s| s.iter().next().cloned()) {
        let e = eval_attr(&strict, o, sym("Print"), &[]);
        println!(
            "policy=Error            → {:?}",
            e.err().map(|x| x.to_string())
        );
        let creation = def.bind(&sys).unwrap();
        println!(
            "policy=CreationOrder    → {}",
            eval_attr(&creation, o, sym("Print"), &[]).unwrap()
        );
        let pri = def
            .bind_with(
                &sys,
                ViewOptions::builder()
                    .policy(ConflictPolicy::Priority(vec![sym("Senior")]))
                    .build(),
            )
            .unwrap();
        println!(
            "policy=Priority(Senior) → {}",
            eval_attr(&pri, o, sym("Print"), &[]).unwrap()
        );
    }
}

fn e9_identity() {
    header(
        "E9",
        "imaginary identity: the two 'seemingly equivalent' queries",
    );
    let nested = "count((select F from F in Family \
                  where F in (select G from G in Family where G.Husband.Age < 50)))";
    let flat = "count((select F from F in Family where F.Husband.Age < 50))";
    row(
        "n",
        &[
            "flat".into(),
            "nested@table".into(),
            "nested@fresh".into(),
            "pop time (table)".into(),
        ],
    );
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let table = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        let fresh = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .identity_mode(IdentityMode::Fresh)
                .build(),
        );
        let a = table.query(flat).unwrap();
        let b = table.query(nested).unwrap();
        let c = fresh.query(nested).unwrap();
        let t = time_ns(5, || {
            std::hint::black_box(table.extent_of(sym("Family")).unwrap());
        });
        row(
            &n.to_string(),
            &[a.to_string(), b.to_string(), c.to_string(), fmt_ns(t)],
        );
    }
    println!("(the paper's claim: flat = nested under identity tables; fresh oids collapse to 0)");
}

fn e10_value_to_object() {
    header(
        "E10",
        "Example 5: value→object conversion with sharing (semantic)",
    );
    let sys = people(1_000);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Address includes imaginary
            (select [City: P.City, Street: P.Street] from P in Person);
        attribute Location in class Person has value
            (select the A from A in Address
             where A.City = self.City and A.Street = self.Street);
        "#,
    )
    .unwrap()
    .bind(&sys)
    .unwrap();
    let people_count = view.query("count(Person)").unwrap();
    let addr_count = view.query("count(Address)").unwrap();
    println!("persons: {people_count}, distinct shared address objects: {addr_count}");
    let t = time_ns(20, || {
        let oids = person_oids(&sys, 32);
        for o in oids {
            std::hint::black_box(eval_attr(&view, o, sym("Location"), &[]).unwrap());
        }
    });
    row("`select the` lookup (32 objs/op)", &[fmt_ns(t)]);
}

fn e11_churn() {
    header("E11", "Example 6: identity churn under address updates");
    const POOR: &str = r#"
        create view Poor;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, CAddress: P.PAddress, Policy: P]
             from P in Policy);
    "#;
    const FIXED: &str = r#"
        create view Fixed;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, Policy: P] from P in Policy);
        attribute CAddress in class Client has value self.Policy.PAddress;
    "#;
    let updates = 200usize;
    row(
        "design",
        &[
            "clients".into(),
            format!("identity entries after {updates} updates"),
            "churn rate".into(),
        ],
    );
    for (label, script) in [("poor", POOR), ("fixed", FIXED)] {
        let sys = insurance(1_000);
        let view = ViewDef::from_script(script).unwrap().bind(&sys).unwrap();
        view.extent_of(sym("Client")).unwrap();
        let baseline = view.identity_table_len(sym("Client"));
        let db = sys.database(sym("Insurance")).unwrap();
        let policies = {
            let d = db.read();
            d.deep_extent(d.schema.class_by_name(sym("Policy")).unwrap())
        };
        for i in 0..updates {
            let p = policies[i % policies.len()];
            db.write()
                .set_attr(p, sym("PAddress"), Value::str(&format!("addr {i}")))
                .unwrap();
            view.extent_of(sym("Client")).unwrap();
        }
        let after = view.identity_table_len(sym("Client"));
        row(
            label,
            &[
                baseline.to_string(),
                after.to_string(),
                format!(
                    "{:.2} new identities/update",
                    (after - baseline) as f64 / updates as f64
                ),
            ],
        );
    }
    println!("(the paper's claim: the poor design makes every move a new client)");
}

fn e13_indexes() {
    header(
        "E13",
        "index pushdown for specialization populations (extension)",
    );
    row(
        "n",
        &["scan".into(), "indexed".into(), "result size".into()],
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut results = Vec::new();
        let mut size = 0usize;
        for indexed in [false, true] {
            let sys = people(n);
            if indexed {
                let db = sys.database(sym("Staff")).unwrap();
                let mut db = db.write();
                let person = db.schema.class_by_name(sym("Person")).unwrap();
                db.create_index(person, sym("City")).unwrap();
            }
            let view = ViewDef::from_script(
                r#"
                create view V;
                import all classes from database Staff;
                class Londoner includes
                    (select P from Person where P.City = "London");
                "#,
            )
            .unwrap()
            .bind_with(
                &sys,
                ViewOptions::builder()
                    .materialization(Materialization::AlwaysRecompute)
                    .build(),
            )
            .unwrap();
            size = view.extent_of(sym("Londoner")).unwrap().len();
            results.push(fmt_ns(time_ns(5, || {
                std::hint::black_box(view.extent_of(sym("Londoner")).unwrap());
            })));
        }
        results.push(size.to_string());
        row(&n.to_string(), &results);
    }
}

fn e12_relational() {
    header("E12", "object views of relational data");
    row(
        "rows",
        &[
            "stage".into(),
            "populate".into(),
            "query".into(),
            "restage".into(),
        ],
    );
    for &n in &[1_000usize, 10_000, 50_000] {
        let rdb = payroll(n, 16);
        let t_stage = time_ns(3, || {
            std::hint::black_box(ov_relational::bridge::stage(&rdb).unwrap());
        });
        let (sys, _) = ov_relational::bridge::stage(&rdb).unwrap();
        let view = ov_relational::bridge::object_view(&rdb, &sys).unwrap();
        let t_pop = time_ns(3, || {
            std::hint::black_box(view.extent_of(sym("Emp")).unwrap());
        });
        view.extent_of(sym("Emp")).unwrap();
        let t_query = time_ns(3, || {
            std::hint::black_box(
                view.query("count((select E from E in Emp where E.Salary > 100000))")
                    .unwrap(),
            );
        });
        let t_restage = time_ns(3, || {
            ov_relational::bridge::restage(&rdb, &sys).unwrap();
        });
        row(
            &n.to_string(),
            &[
                fmt_ns(t_stage),
                fmt_ns(t_pop),
                fmt_ns(t_query),
                fmt_ns(t_restage),
            ],
        );
    }
}
