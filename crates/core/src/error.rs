//! Errors for the view layer.

use std::fmt;

use ov_oodb::{OodbError, Symbol};
use ov_query::QueryError;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ViewError>;

/// Errors raised while defining, binding, or querying views.
#[derive(Clone, PartialEq, Debug)]
pub enum ViewError {
    /// From the language layer (parse/type/eval).
    Query(QueryError),
    /// From the data-model layer.
    Oodb(OodbError),
    /// "It is not possible for a user to insert an object directly into a
    /// virtual class" (§4.1).
    VirtualInsert(Symbol),
    /// Core attributes fix imaginary-object identity; they cannot be
    /// assigned through the view (§5.1: "the core attributes should be
    /// thought of as being somewhat immutable").
    CoreAttrUpdate {
        /// The imaginary class.
        class: Symbol,
        /// The core attribute.
        attr: Symbol,
    },
    /// Updating anything about an imaginary object other than through its
    /// base data is meaningless.
    ImaginaryUpdate(Symbol),
    /// The attribute resolves to a computed (virtual) definition; assigning
    /// it through the view would silently store a shadowing base value
    /// instead of changing what the attribute computes.
    ComputedAttrUpdate {
        /// The class resolution started from.
        class: Symbol,
        /// The computed attribute.
        attr: Symbol,
    },
    /// The attribute is hidden in this view.
    HiddenAttr {
        /// The class resolution started from.
        class: Symbol,
        /// The hidden attribute.
        attr: Symbol,
    },
    /// The class is hidden in this view.
    HiddenClass(Symbol),
    /// Importing two classes with the same name (alias one of them).
    ImportConflict {
        /// The conflicting class name.
        name: Symbol,
        /// The database the second copy came from.
        db: Symbol,
    },
    /// A virtual class's population query must return objects; this one
    /// returns plain values (use `imaginary` for that).
    NonObjectPopulation {
        /// The virtual class being defined.
        class: Symbol,
        /// What the query produced instead.
        found: String,
    },
    /// An imaginary population query must return tuples.
    NonTuplePopulation {
        /// The imaginary class being defined.
        class: Symbol,
        /// What the query produced instead.
        found: String,
    },
    /// At most one `imaginary` include per class, and it cannot be mixed
    /// with non-imaginary includes.
    MixedImaginary(Symbol),
    /// Virtual class definitions form a cycle (A includes objects of B,
    /// B of A …).
    CyclicVirtualClass(Symbol),
    /// A parameterized class was applied with the wrong number of
    /// arguments.
    ParamArity {
        /// The template's name.
        class: Symbol,
        /// Its parameter count.
        expected: usize,
        /// The argument count supplied.
        got: usize,
    },
    /// The object is not visible in this view (its class was not imported).
    NotVisible(ov_oodb::Oid),
    /// The definition would close a cycle in the view dependency graph
    /// (view A imports view B, which — transitively — imports A).
    CyclicViewDependency {
        /// The view whose definition closes the cycle.
        view: Symbol,
        /// The offending path, `view → … → view`.
        path: Vec<Symbol>,
    },
    /// A redefinition was rolled back because rebinding one of its
    /// transitive dependents failed: the catalog revalidates dependents
    /// atomically, so nothing was changed.
    RevalidationFailed {
        /// The view (or database) whose change triggered revalidation.
        changed: Symbol,
        /// The dependent view that failed to rebind.
        dependent: Symbol,
        /// Why it failed.
        cause: Box<ViewError>,
    },
    /// Misc definition error with context.
    Definition(String),
    /// Graceful degradation failed: a population recompute kept faulting
    /// (or a worker chunk panicked), the retry budget is spent, and no
    /// last-good cached population was available to serve stale. The
    /// underlying failure is in `cause` (and in [`source`]).
    ///
    /// [`source`]: std::error::Error::source
    Degraded {
        /// The virtual (or imaginary) class whose population failed.
        class: Symbol,
        /// Recompute attempts made (initial try + retries).
        attempts: u32,
        /// The final failure.
        cause: Box<ViewError>,
    },
}

impl ViewError {
    /// True when the failure is transient — an injected or environmental
    /// fault that a retry might clear — as opposed to a semantic error or a
    /// resource-budget breach. Mirrors [`QueryError::is_transient`] and
    /// `OodbError::is_transient`.
    pub fn is_transient(&self) -> bool {
        match self {
            ViewError::Query(e) => e.is_transient(),
            ViewError::Oodb(e) => e.is_transient(),
            ViewError::Degraded { cause, .. } => cause.is_transient(),
            ViewError::RevalidationFailed { cause, .. } => cause.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Query(e) => write!(f, "{e}"),
            ViewError::Oodb(e) => write!(f, "{e}"),
            ViewError::VirtualInsert(c) => write!(
                f,
                "cannot insert directly into virtual class `{c}` (populate it through its base classes)"
            ),
            ViewError::CoreAttrUpdate { class, attr } => write!(
                f,
                "cannot assign core attribute `{attr}` of imaginary class `{class}`: core attributes fix object identity"
            ),
            ViewError::ImaginaryUpdate(c) => {
                write!(f, "cannot update imaginary object of class `{c}` directly")
            }
            ViewError::ComputedAttrUpdate { class, attr } => write!(
                f,
                "attribute `{attr}` of class `{class}` is computed; it cannot be assigned through the view"
            ),
            ViewError::HiddenAttr { class, attr } => {
                write!(f, "attribute `{attr}` of class `{class}` is hidden in this view")
            }
            ViewError::HiddenClass(c) => write!(f, "class `{c}` is hidden in this view"),
            ViewError::ImportConflict { name, db } => write!(
                f,
                "import of class `{name}` from database `{db}` conflicts with an existing class; use `as` to rename"
            ),
            ViewError::NonObjectPopulation { class, found } => write!(
                f,
                "population query of virtual class `{class}` must return objects, found {found} (use `includes imaginary` for value populations)"
            ),
            ViewError::NonTuplePopulation { class, found } => write!(
                f,
                "imaginary population of class `{class}` must return tuples, found {found}"
            ),
            ViewError::MixedImaginary(c) => write!(
                f,
                "class `{c}`: at most one `imaginary` include, not mixed with other includes"
            ),
            ViewError::CyclicVirtualClass(c) => {
                write!(f, "virtual class `{c}` is defined (transitively) in terms of itself")
            }
            ViewError::ParamArity {
                class,
                expected,
                got,
            } => write!(
                f,
                "parameterized class `{class}` takes {expected} argument(s), got {got}"
            ),
            ViewError::NotVisible(oid) => {
                write!(f, "object {oid} is not visible in this view")
            }
            ViewError::CyclicViewDependency { view, path } => {
                write!(f, "view `{view}` would depend on itself: ")?;
                for (i, v) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            ViewError::RevalidationFailed {
                changed,
                dependent,
                cause,
            } => write!(
                f,
                "redefinition of `{changed}` rolled back: dependent view `{dependent}` \
                 failed to revalidate: {cause}"
            ),
            ViewError::Definition(msg) => write!(f, "view definition error: {msg}"),
            ViewError::Degraded {
                class,
                attempts,
                cause,
            } => write!(
                f,
                "view degraded: population of `{class}` failed after {attempts} attempt(s) \
                 with no cached fallback: {cause}"
            ),
        }
    }
}

impl std::error::Error for ViewError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ViewError::Query(e) => Some(e),
            ViewError::Oodb(e) => Some(e),
            ViewError::Degraded { cause, .. } => Some(&**cause),
            ViewError::RevalidationFailed { cause, .. } => Some(&**cause),
            _ => None,
        }
    }
}

impl From<QueryError> for ViewError {
    fn from(e: QueryError) -> ViewError {
        match e {
            QueryError::Oodb(o) => ViewError::Oodb(o),
            other => ViewError::Query(other),
        }
    }
}

impl From<OodbError> for ViewError {
    fn from(e: OodbError) -> ViewError {
        ViewError::Oodb(e)
    }
}

impl From<ViewError> for QueryError {
    /// The `DataSource` trait speaks `QueryError`; view-specific failures
    /// cross the boundary as evaluation errors with their display text.
    fn from(e: ViewError) -> QueryError {
        match e {
            ViewError::Query(q) => q,
            ViewError::Oodb(o) => QueryError::Oodb(o),
            other => QueryError::Eval(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    #[test]
    fn round_trips_through_query_error() {
        let v = ViewError::VirtualInsert(sym("Adult"));
        let q: QueryError = v.into();
        assert!(q.to_string().contains("virtual class `Adult`"));
    }

    #[test]
    fn oodb_errors_unwrap() {
        let v: ViewError = OodbError::UnknownClass(sym("X")).into();
        assert_eq!(v, ViewError::Oodb(OodbError::UnknownClass(sym("X"))));
    }
}
