//! The view dependency graph: which databases and which other views each
//! view's definition reads.
//!
//! The paper defines views over base databases; production view stacks are
//! *graphs* — a view imports another view's virtual classes, which import a
//! third's, all the way down to base data. This module is the catalog's
//! record of that graph: a DAG whose nodes are views and whose edges point
//! at the things a view reads ([`DepTarget::Database`] or
//! [`DepTarget::View`]), each edge annotated with the class names actually
//! read (extracted from the typechecked definition at bind time).
//!
//! Invariants the DDL layer ([`crate::catalog`]) enforces with this graph:
//!
//! * **acyclic** — a definition that would close a cycle is rejected at
//!   bind time ([`DependencyGraph::would_cycle`]);
//! * **RESTRICT** — a view with dependents cannot be dropped, and
//!   redefining it atomically revalidates every transitive dependent;
//! * **topological propagation** — after a base schema change, only the
//!   transitive dependents of that database are rebound, in dependency
//!   order ([`DependencyGraph::transitive_dependents`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ov_oodb::Symbol;

/// One thing a view's definition reads: a base database or another view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DepTarget {
    /// A base database, by name.
    Database(Symbol),
    /// Another view, by name.
    View(Symbol),
}

impl fmt::Display for DepTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepTarget::Database(n) => write!(f, "database {n}"),
            DepTarget::View(n) => write!(f, "view {n}"),
        }
    }
}

/// One outgoing dependency edge of a view, with the class names read
/// through it (empty when a target is imported but no class of it is
/// referenced yet).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DepEdge {
    /// What the view reads.
    pub on: DepTarget,
    /// The class names read through this edge, sorted.
    pub classes: BTreeSet<Symbol>,
}

/// The session-level dependency DAG: view name → outgoing edges.
///
/// Deterministic by construction (`BTreeMap`/`BTreeSet` everywhere), so
/// `describe` output and propagation order are stable across runs.
#[derive(Clone, Default, Debug)]
pub struct DependencyGraph {
    edges: BTreeMap<Symbol, Vec<DepEdge>>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> DependencyGraph {
        DependencyGraph::default()
    }

    /// Records (or replaces) `view`'s outgoing edges.
    pub fn set(&mut self, view: Symbol, deps: Vec<DepEdge>) {
        self.edges.insert(view, deps);
    }

    /// Removes `view` from the graph (its outgoing edges; callers check
    /// for incoming edges first via [`Self::direct_dependents`]).
    pub fn remove(&mut self, view: Symbol) {
        self.edges.remove(&view);
    }

    /// `view`'s outgoing edges, if it is registered.
    pub fn deps_of(&self, view: Symbol) -> Option<&[DepEdge]> {
        self.edges.get(&view).map(Vec::as_slice)
    }

    /// All registered views, sorted.
    pub fn views(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.edges.keys().copied()
    }

    /// Views with a direct edge onto `target`, sorted.
    pub fn direct_dependents(&self, target: DepTarget) -> Vec<Symbol> {
        self.edges
            .iter()
            .filter(|(_, deps)| deps.iter().any(|d| d.on == target))
            .map(|(v, _)| *v)
            .collect()
    }

    /// Every view that (transitively) reads `target`, in topological order:
    /// a view appears after every view it depends on, so propagating a
    /// change in this order refreshes upstream views before the views
    /// stacked on them.
    pub fn transitive_dependents(&self, target: DepTarget) -> Vec<Symbol> {
        let mut affected: BTreeSet<Symbol> = BTreeSet::new();
        // Fixpoint: grow the affected set until no new dependent appears.
        // The graph is small (a session's views), so simplicity wins.
        loop {
            let before = affected.len();
            for (view, deps) in &self.edges {
                let hit = deps.iter().any(|d| {
                    d.on == target || matches!(d.on, DepTarget::View(u) if affected.contains(&u))
                });
                if hit {
                    affected.insert(*view);
                }
            }
            if affected.len() == before {
                break;
            }
        }
        self.topo_sort(&affected)
    }

    /// Orders an arbitrary set of views topologically: dependencies before
    /// dependents, ties broken by name. Used when replaying a session
    /// (`save` emits view definitions in this order so a stacked view is
    /// restored after the views it imports).
    pub fn topo_order(&self, views: impl IntoIterator<Item = Symbol>) -> Vec<Symbol> {
        let subset: BTreeSet<Symbol> = views.into_iter().collect();
        self.topo_sort(&subset)
    }

    /// Orders `subset` topologically: dependencies before dependents, ties
    /// broken by name for determinism.
    fn topo_sort(&self, subset: &BTreeSet<Symbol>) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(subset.len());
        let mut placed: BTreeSet<Symbol> = BTreeSet::new();
        while placed.len() < subset.len() {
            let mut progressed = false;
            for &v in subset {
                if placed.contains(&v) {
                    continue;
                }
                let ready = self.edges.get(&v).is_none_or(|deps| {
                    deps.iter().all(|d| match d.on {
                        DepTarget::View(u) => !subset.contains(&u) || placed.contains(&u),
                        DepTarget::Database(_) => true,
                    })
                });
                if ready {
                    out.push(v);
                    placed.insert(v);
                    progressed = true;
                }
            }
            // A cycle would stall the loop; the catalog rejects cycles at
            // bind time, so place the rest in name order as a backstop.
            if !progressed {
                for &v in subset {
                    if placed.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Would registering `view` with edges `deps` close a cycle? Returns
    /// the offending path `view → … → view` when it would.
    pub fn would_cycle(&self, view: Symbol, deps: &[DepEdge]) -> Option<Vec<Symbol>> {
        // DFS from each proposed view-edge through the *existing* edges.
        let mut stack = vec![view];
        for d in deps {
            if let DepTarget::View(u) = d.on {
                if let Some(path) = self.dfs_to(u, view, &mut stack) {
                    return Some(path);
                }
            }
        }
        None
    }

    fn dfs_to(&self, from: Symbol, needle: Symbol, stack: &mut Vec<Symbol>) -> Option<Vec<Symbol>> {
        if from == needle {
            let mut path = stack.clone();
            path.push(needle);
            return Some(path);
        }
        if stack.contains(&from) {
            return None; // pre-existing cycle guard; cannot happen in a DAG
        }
        stack.push(from);
        if let Some(deps) = self.edges.get(&from) {
            for d in deps {
                if let DepTarget::View(u) = d.on {
                    if let Some(path) = self.dfs_to(u, needle, stack) {
                        return Some(path);
                    }
                }
            }
        }
        stack.pop();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    fn edge(on: DepTarget, classes: &[&str]) -> DepEdge {
        DepEdge {
            on,
            classes: classes.iter().map(|c| sym(c)).collect(),
        }
    }

    /// Staff ← A ← B ← C, plus D over Staff only.
    fn chain() -> DependencyGraph {
        let mut g = DependencyGraph::new();
        let staff = DepTarget::Database(sym("Staff"));
        g.set(sym("A"), vec![edge(staff, &["Person"])]);
        g.set(sym("B"), vec![edge(DepTarget::View(sym("A")), &["Adult"])]);
        g.set(sym("C"), vec![edge(DepTarget::View(sym("B")), &["Rich"])]);
        g.set(sym("D"), vec![edge(staff, &["Person"])]);
        g
    }

    #[test]
    fn transitive_dependents_in_topo_order() {
        let g = chain();
        assert_eq!(
            g.transitive_dependents(DepTarget::Database(sym("Staff"))),
            vec![sym("A"), sym("B"), sym("C"), sym("D")]
        );
        assert_eq!(
            g.transitive_dependents(DepTarget::View(sym("A"))),
            vec![sym("B"), sym("C")]
        );
        assert_eq!(
            g.transitive_dependents(DepTarget::View(sym("C"))),
            Vec::<Symbol>::new()
        );
    }

    #[test]
    fn direct_dependents_only() {
        let g = chain();
        assert_eq!(
            g.direct_dependents(DepTarget::View(sym("A"))),
            vec![sym("B")]
        );
    }

    #[test]
    fn cycle_detection_reports_the_path() {
        let g = chain();
        // Redefining A to read C would close A → C → B → A.
        let path = g
            .would_cycle(sym("A"), &[edge(DepTarget::View(sym("C")), &[])])
            .expect("cycle expected");
        assert_eq!(path.first(), Some(&sym("A")));
        assert_eq!(path.last(), Some(&sym("A")));
        assert!(path.contains(&sym("B")) && path.contains(&sym("C")));
        // A self-edge is the smallest cycle.
        assert!(g
            .would_cycle(sym("D"), &[edge(DepTarget::View(sym("D")), &[])])
            .is_some());
        // Reading a database never cycles.
        assert!(g
            .would_cycle(sym("A"), &[edge(DepTarget::Database(sym("Staff")), &[])])
            .is_none());
    }
}
