//! Bound views.
//!
//! A [`View`] is a [`crate::ViewDef`] bound against a
//! [`ov_oodb::System`]: imports are resolved (the view gets its own schema
//! — "a view has a schema, like all databases, but no proper data of its
//! own", §3), virtual classes are positioned by hierarchy inference, and the
//! whole thing implements [`ov_query::DataSource`] so the standard query
//! evaluator runs against it unchanged ("A view should be treated as a
//! database", §6).
//!
//! ## Laziness and caching
//!
//! Virtual-class populations are evaluated lazily, under one of three
//! [`Materialization`] policies. [`Materialization::Cached`] (the default)
//! keys the cached population on the versions of the source databases and
//! fully recomputes when any of them changes.
//! [`Materialization::Incremental`] patches the cached population instead:
//! it re-tests membership only for the oids in the stores' change
//! journals, falling back to a full recompute on a journal gap or a
//! non-delta-maintainable include. [`Materialization::AlwaysRecompute`]
//! skips caching entirely (the relational baseline the benchmarks compare
//! against). `View::explain_population` reports which path resolved a
//! given request. The **identity tables** of imaginary classes are *not*
//! keyed: they survive recomputation and updates, which is precisely the
//! paper's §5.1 identity semantics ("we are guaranteed that the same tuple
//! will be assigned the same oid each time the class C is invoked").
//!
//! ## Concurrency
//!
//! A bound view is `Send + Sync`: shared state lives behind `RwLock`s (the
//! population cache is sharded by class id to keep readers from serializing
//! on one lock), counters are atomics, and the two pieces of *call-stack*
//! state — the population cycle guard and the privileged-visibility depth —
//! are thread-local, keyed by a per-view token. Any number of threads may
//! query one view concurrently; population of large specialization queries
//! can itself be split across a scoped thread pool (see
//! [`ov_query::ParallelConfig`]).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use ov_oodb::ids::IMAGINARY_OID_BASE;
use ov_oodb::{
    AttrBody, AttrDef, AttrSig, ClassGraph, ClassId, ConflictPolicy, DbHandle, DurableCore, Expr,
    Oid, OodbError, Schema, SelectExpr, Symbol, System, Tuple, Type, Value,
};
use ov_query::{
    eval_select, infer_select_in, plan, resolve_type, DataSource, IncludeSpec, ParallelConfig,
    QueryError, ResolvedAttr, TypeEnv,
};

use crate::def::{AttrDecl, Hide, Import, ViewDef, ViewElement};
use crate::error::{Result, ViewError};
use crate::graph::DepEdge;
use crate::infer::{conforms_to, infer_position, upward_attrs};

/// Number of shards in the population cache. Sharding by class id lets
/// concurrent readers populating different classes take different locks.
const POP_SHARDS: usize = 16;

/// Source of per-view tokens. A monotonically increasing counter (never an
/// address, which could be reused) keys the thread-local evaluation state.
static NEXT_VIEW_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Call-stack state of one thread evaluating against one view.
#[derive(Default)]
struct EvalState {
    /// Classes whose population is being computed on this thread (cycle
    /// guard: `A includes select … from B`, `B includes select … from A`).
    populating: HashSet<ClassId>,
    /// Depth of computed-attribute bodies / population queries currently
    /// being evaluated. While positive, hidden attributes and classes
    /// resolve normally: the view's own definitions see through its hides
    /// (paper Example 5).
    body_depth: u32,
}

thread_local! {
    /// Per-thread evaluation state, keyed by view token. Entries are
    /// removed as soon as they return to the default state, so the map
    /// only holds views this thread is *currently* evaluating.
    static EVAL_STATE: RefCell<HashMap<u64, EvalState>> = RefCell::new(HashMap::new());
    /// Per-thread stats contributions, keyed by view token (see
    /// [`View::thread_stats`]).
    static THREAD_STATS: RefCell<HashMap<u64, ViewStats>> = RefCell::new(HashMap::new());
    /// Set by [`View::population`] when degradation *failed* — the retry
    /// budget is spent and no cached population existed to serve stale.
    /// The public entry points consume it to wrap the propagating error in
    /// [`ViewError::Degraded`]; `DataSource` trait methods can't carry the
    /// context themselves because they speak `QueryError`.
    static DEGRADED_NOTE: Cell<Option<(Symbol, u32)>> = const { Cell::new(None) };
}

/// Recompute attempts [`View::population`] makes on a transient fault
/// (initial try + retries) before degrading to the stale cache.
const MAX_POPULATION_ATTEMPTS: u32 = 3;

/// Consecutive parallel-scan failures before a view stops splitting
/// population scans across workers (sticky for the view's lifetime;
/// visible as [`ViewStats::seq_fallbacks`]).
const PARALLEL_STRIKE_LIMIT: u32 = 3;

/// Scope guard for the population eval-state bracket: marks `class` as
/// populating and raises the privileged-visibility depth on construction,
/// restores both on drop. Drop-based so the bracket also closes when the
/// computation *unwinds* (an injected panic, a bug in an attribute body) —
/// otherwise a leaked `body_depth` would let later queries on this thread
/// see through the view's hides.
struct PopBracket<'a> {
    view: &'a View,
    class: ClassId,
}

impl<'a> PopBracket<'a> {
    fn enter(view: &'a View, class: ClassId) -> PopBracket<'a> {
        view.with_eval(|s| {
            s.populating.insert(class);
            s.body_depth += 1;
        });
        // Membership in the populating set changes what
        // `resolution_class_and_field` answers for this class, so warm
        // compiled-scan resolution caches must be invalidated on both
        // edges of the bracket.
        view.res_gen.fetch_add(1, Ordering::Release);
        PopBracket { view, class }
    }
}

impl Drop for PopBracket<'_> {
    fn drop(&mut self) {
        self.view.with_eval(|s| {
            s.body_depth -= 1;
            s.populating.remove(&self.class);
        });
        self.view.res_gen.fetch_add(1, Ordering::Release);
    }
}

/// How virtual-class populations are (re)computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Materialization {
    /// Cache the population; invalidate (fully recompute) when any source
    /// database changes.
    #[default]
    Cached,
    /// Recompute on every access (the relational-view baseline; used by the
    /// benchmarks to quantify what caching buys).
    AlwaysRecompute,
    /// Maintain cached populations **incrementally**: on source change,
    /// re-test membership only for the oids in the stores' change journals.
    /// Falls back to full recomputation when the journal has gaps or when
    /// an include is not delta-maintainable (`like`, `imaginary`,
    /// multi-binding queries). This is our answer to the paper's closing
    /// remark that materialized views "acquire a new dimension in the
    /// context of objects" (§6).
    Incremental,
}

/// How imaginary objects receive oids (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IdentityMode {
    /// The paper's semantics: a persistent table maps each core tuple to an
    /// oid, so identity is stable across invocations and updates.
    #[default]
    Table,
    /// The naive semantics the paper warns about: fresh oids on every
    /// recomputation ("the result is implementation dependent, and we may
    /// obtain an empty set"). Kept as an executable baseline.
    Fresh,
}

/// How an imported class relates to its source.
#[derive(Clone, Debug)]
enum ClassKind {
    Imported { source: usize, orig: ClassId },
    Virtual,
    Imaginary { core: Vec<Symbol> },
}

/// A bound include item.
#[derive(Clone, Debug)]
enum BoundInclude {
    /// Wholly-included class (generalization); also produced by bind-time
    /// `like` matches.
    Class(ClassId),
    /// Population query (specialization).
    Query(SelectExpr),
    /// Behavioral spec — re-scanned at population time so classes defined
    /// *after* this one are admitted automatically (§4.1's flexibility
    /// argument).
    Like { spec: ClassId },
    /// Imaginary population (§5).
    Imaginary(SelectExpr),
}

/// A per-include plan for delta maintenance, when one exists.
#[derive(Clone, Debug)]
enum IncPlan {
    /// Membership = (structural) membership in this class.
    Class(ClassId),
    /// Membership = membership in `class` plus the filter holding with
    /// `var` bound to the object. Derived from single-binding
    /// specialization queries `select V from V in C where F`.
    Filter {
        class: ClassId,
        var: Symbol,
        filter: Option<Expr>,
    },
    /// Not delta-maintainable; forces a full recompute.
    Opaque,
}

#[derive(Clone, Debug)]
struct VirtualInfo {
    includes: Vec<BoundInclude>,
    /// One plan per include (parallel to `includes`).
    plans: Vec<IncPlan>,
    /// Compiled membership predicate per include (parallel to `plans`):
    /// `Some` when the plan is a [`IncPlan::Filter`] whose predicate the
    /// bytecode compiler covers. Compiled once at bind time and shared by
    /// full recomputes and per-object delta retests.
    compiled: Vec<Option<Arc<ov_query::Program>>>,
}

/// A parameterized class template (`class Adult(A) includes …`).
#[derive(Clone, Debug)]
struct ParamTemplate {
    params: Vec<Symbol>,
    includes: Vec<IncludeSpec>,
}

#[derive(Clone, Debug)]
struct ImaginaryObject {
    class: ClassId,
    core: Tuple,
}

#[derive(Clone, Debug)]
struct CachedPop {
    versions: Vec<u64>,
    schema_len: usize,
    oids: Arc<BTreeSet<Oid>>,
}

/// A bound, queryable view. `Send + Sync`: any number of threads may read
/// through it concurrently (see the module docs).
#[derive(Debug)]
pub struct View {
    /// Unique token keying this view's thread-local evaluation state.
    token: u64,
    name: Symbol,
    /// The view's own schema: copies of imported classes plus virtual
    /// classes. Grows when parameterized classes instantiate, hence the
    /// lock.
    schema: RwLock<Schema>,
    kinds: RwLock<HashMap<ClassId, ClassKind>>,
    virt: RwLock<HashMap<ClassId, VirtualInfo>>,
    sources: Vec<DbHandle>,
    /// Durability cores of durable sources (deduplicated). Imaginary
    /// identity assignments are logged here so §5.1 identity survives
    /// restarts; empty for purely in-memory sources.
    durable: Vec<Arc<DurableCore>>,
    /// Per-source map from source class ids to view class ids.
    import_maps: Vec<HashMap<ClassId, ClassId>>,
    hidden_attrs: Vec<(ClassId, Symbol)>,
    hidden_classes: HashSet<ClassId>,
    templates: HashMap<Symbol, ParamTemplate>,
    instances: RwLock<HashMap<(Symbol, Vec<Value>), ClassId>>,
    /// Population cache, sharded by class id (see [`POP_SHARDS`]).
    pop_cache: [RwLock<HashMap<ClassId, CachedPop>>; POP_SHARDS],
    identity: RwLock<HashMap<ClassId, HashMap<Tuple, Oid>>>,
    imaginary: RwLock<HashMap<Oid, ImaginaryObject>>,
    next_imaginary: AtomicU64,
    policy: ConflictPolicy,
    materialization: Materialization,
    identity_mode: IdentityMode,
    parallel: ParallelConfig,
    stats: StatCells,
    /// Consecutive parallel population-scan failures (chunk faults or
    /// panics). At [`PARALLEL_STRIKE_LIMIT`] the view stops splitting scans
    /// and stays sequential — a tripped circuit breaker.
    parallel_strikes: AtomicU32,
    /// Attribute-resolution generation, surfaced to the compiled engine via
    /// [`DataSource::resolution_generation`]. Bumped whenever something that
    /// can change what `resolution_class_and_field` returns for a given
    /// `(class, name)` happens mid-session: opening/closing a population
    /// bracket (populating-set membership gates virtual-class resolution)
    /// and template instantiation (which grows the schema). Warm per-slot
    /// resolution caches in `ov_query::Scan` are dropped when this moves.
    res_gen: AtomicU64,
    /// Dependency edges recorded at bind time: which databases and which
    /// upstream views this definition reads, with the class names read.
    deps: Vec<DepEdge>,
}

impl Drop for View {
    fn drop(&mut self) {
        // Clean this thread's TLS entries; other threads' thread-stats
        // entries die with their threads. `try_with` because a View may be
        // dropped during thread teardown, after the TLS maps are gone.
        let _ = EVAL_STATE.try_with(|m| m.borrow_mut().remove(&self.token));
        let _ = THREAD_STATS.try_with(|m| m.borrow_mut().remove(&self.token));
    }
}

impl ViewDef {
    /// Starts a builder-style bind against `system` (mirrors
    /// [`ViewOptions::builder`]): chain [`Binder::options`] and
    /// [`Binder::over`], then call [`Binder::bind`].
    pub fn binder<'a>(&'a self, system: &'a System) -> Binder<'a> {
        Binder {
            def: self,
            system,
            options: ViewOptions::default(),
            upstream: HashMap::new(),
        }
    }

    /// Binds the definition against `system`, producing a queryable view
    /// with default settings.
    #[deprecated(note = "use `def.binder(&system).bind()`")]
    pub fn bind(&self, system: &System) -> Result<View> {
        self.binder(system).bind()
    }

    /// Binds with explicit options.
    #[deprecated(note = "use `def.binder(&system).options(options).bind()`")]
    pub fn bind_with(&self, system: &System, options: ViewOptions) -> Result<View> {
        self.binder(system).options(options).bind()
    }
}

/// The definition of a view, flattened for binding: upstream view imports
/// expanded into their own (base) imports and elements, each element tagged
/// with the view it came from (`None` = the definition being bound).
struct ExpandedDef {
    imports: Vec<Import>,
    elements: Vec<(ViewElement, Option<Symbol>)>,
    /// Direct dependency targets of the root definition, in import order.
    direct: Vec<crate::graph::DepTarget>,
}

/// Builder-style binding of a [`ViewDef`] (the bind-side mirror of
/// [`ViewOptions::builder`]):
///
/// ```ignore
/// let view = def
///     .binder(&system)
///     .options(ViewOptions::builder().population(Population::Incremental).build())
///     .over(&upstream_def) // resolve `import … from view Upstream`
///     .bind()?;
/// ```
///
/// `over` registers upstream view definitions so the bound view may import
/// *views*, not just databases: an import whose name matches a registered
/// definition is expanded in place — the upstream's own imports and
/// elements are spliced in (deduplicated, depth first) ahead of this
/// definition's elements, so its virtual classes are queryable, delta
/// retests flow through them level by level, and a change to the shared
/// base propagates through the whole stack. Cycles among definitions are
/// rejected here, at bind time.
pub struct Binder<'a> {
    def: &'a ViewDef,
    system: &'a System,
    options: ViewOptions,
    upstream: HashMap<Symbol, &'a ViewDef>,
}

impl<'a> Binder<'a> {
    /// Sets the view options (default: [`ViewOptions::default`]).
    pub fn options(mut self, options: ViewOptions) -> Self {
        self.options = options;
        self
    }

    /// Registers one upstream view definition that imports may resolve to.
    pub fn over(mut self, upstream: &'a ViewDef) -> Self {
        self.upstream.insert(upstream.name, upstream);
        self
    }

    /// Registers several upstream view definitions at once.
    pub fn over_all(mut self, defs: impl IntoIterator<Item = &'a ViewDef>) -> Self {
        for def in defs {
            self.upstream.insert(def.name, def);
        }
        self
    }

    /// Expands view imports recursively. `stack` is the chain of views
    /// being expanded (cycle guard), `spliced` the set already merged in
    /// (diamond dedup).
    fn expand_into(
        def: &ViewDef,
        upstream: &HashMap<Symbol, &'a ViewDef>,
        stack: &mut Vec<Symbol>,
        spliced: &mut BTreeSet<Symbol>,
        out: &mut ExpandedDef,
    ) -> Result<()> {
        let root = stack.is_empty();
        stack.push(def.name);
        for import in &def.imports {
            if stack.contains(&import.db) {
                let mut path = stack.clone();
                path.push(import.db);
                return Err(ViewError::CyclicViewDependency {
                    view: stack[0],
                    path,
                });
            }
            if let Some(updef) = upstream.get(&import.db) {
                if !matches!(import.what, ov_query::ImportWhat::AllClasses) {
                    return Err(ViewError::Definition(format!(
                        "`{}` is a view; only `import all classes` is supported from a view",
                        import.db
                    )));
                }
                if root {
                    out.direct.push(crate::graph::DepTarget::View(import.db));
                }
                if spliced.insert(import.db) {
                    Self::expand_into(updef, upstream, stack, spliced, out)?;
                }
            } else {
                if root {
                    out.direct
                        .push(crate::graph::DepTarget::Database(import.db));
                }
                if !out.imports.contains(import) {
                    out.imports.push(import.clone());
                }
            }
        }
        let origin = if root { None } else { Some(def.name) };
        for element in &def.elements {
            out.elements.push((element.clone(), origin));
        }
        stack.pop();
        Ok(())
    }

    /// Binds the definition, producing a queryable [`View`].
    pub fn bind(self) -> Result<View> {
        use crate::graph::{DepEdge, DepTarget};
        let def = self.def;
        let _span = ov_oodb::span!("view.bind", view = def.name);
        ov_oodb::failpoint!("view.bind");
        let mut expanded = ExpandedDef {
            imports: Vec::new(),
            elements: Vec::new(),
            direct: Vec::new(),
        };
        Self::expand_into(
            def,
            &self.upstream,
            &mut Vec::new(),
            &mut BTreeSet::new(),
            &mut expanded,
        )?;
        let options = self.options;
        let mut view = View {
            token: NEXT_VIEW_TOKEN.fetch_add(1, Ordering::Relaxed),
            name: def.name,
            schema: RwLock::new(Schema::new()),
            kinds: RwLock::new(HashMap::new()),
            virt: RwLock::new(HashMap::new()),
            sources: Vec::new(),
            durable: Vec::new(),
            import_maps: Vec::new(),
            hidden_attrs: Vec::new(),
            hidden_classes: HashSet::new(),
            templates: HashMap::new(),
            instances: RwLock::new(HashMap::new()),
            pop_cache: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            identity: RwLock::new(HashMap::new()),
            imaginary: RwLock::new(HashMap::new()),
            next_imaginary: AtomicU64::new(IMAGINARY_OID_BASE),
            policy: options.policy,
            materialization: options.materialization,
            identity_mode: options.identity_mode,
            parallel: options.parallel,
            stats: StatCells::default(),
            parallel_strikes: AtomicU32::new(0),
            res_gen: AtomicU64::new(0),
            deps: Vec::new(),
        };
        // Which dependency target defined each class name the view can
        // read: imported classes map to their database, spliced virtual
        // classes to the upstream view that declared them. The view's own
        // declarations are deliberately absent — reading your own class is
        // not a dependency.
        let mut provenance: HashMap<Symbol, DepTarget> = HashMap::new();
        // Class names read through each edge; seeded so every direct
        // import target appears even when no class of it is referenced.
        let mut dep_classes: BTreeMap<DepTarget, BTreeSet<Symbol>> = expanded
            .direct
            .iter()
            .map(|t| (*t, BTreeSet::new()))
            .collect();
        for import in &expanded.imports {
            let visible = view.do_import(self.system, import)?;
            for name in visible {
                provenance.insert(name, DepTarget::Database(import.db));
            }
        }
        for (element, origin) in &expanded.elements {
            if origin.is_none() {
                // Extract what this element reads *before* defining it, so
                // self-references don't count and forward references fail
                // in `define_*` exactly as they always did.
                for name in element_reads(&view, element) {
                    if let Some(&target) = provenance.get(&name) {
                        dep_classes.entry(target).or_default().insert(name);
                    }
                }
            }
            match element {
                ViewElement::VirtualClass(vc) => {
                    if vc.params.is_empty() {
                        view.define_virtual_class(vc.name, &vc.includes)?;
                    } else {
                        view.templates.insert(
                            vc.name,
                            ParamTemplate {
                                params: vc.params.clone(),
                                includes: vc.includes.clone(),
                            },
                        );
                    }
                    if let Some(up) = origin {
                        provenance.insert(vc.name, DepTarget::View(*up));
                    }
                }
                ViewElement::Attribute(decl) => view.define_attribute(decl)?,
                ViewElement::Hide(h) => view.add_hide(h)?,
            }
        }
        view.deps = dep_classes
            .into_iter()
            .map(|(on, classes)| DepEdge { on, classes })
            .collect();
        // With every class defined, re-adopt identity assignments an
        // earlier incarnation of this view persisted (§5.1 across
        // restarts).
        view.adopt_durable_identity();
        Ok(view)
    }
}

/// The class names one view element reads, resolved with the same scoping
/// as the typechecker (see [`ov_query::referenced_classes`]). Run against
/// the partially-bound view, which at this point holds everything declared
/// *before* the element — exactly the names it may legally read.
fn element_reads(view: &View, element: &ViewElement) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    match element {
        ViewElement::VirtualClass(vc) => {
            for inc in &vc.includes {
                match inc {
                    IncludeSpec::Class(n) | IncludeSpec::Like(n) => {
                        out.insert(*n);
                    }
                    IncludeSpec::Query(q) | IncludeSpec::Imaginary(q) => {
                        let mut env = TypeEnv::new();
                        // Parameters of a parameterized class shadow
                        // class names inside its includes.
                        for p in &vc.params {
                            env.bind(*p, Type::Any);
                        }
                        ov_query::referenced_classes_select(view, &mut env, q, &mut out);
                    }
                }
            }
        }
        ViewElement::Attribute(decl) => {
            out.insert(decl.class);
            if let Some(body) = &decl.body {
                let mut env = TypeEnv::new();
                for (p, _) in &decl.params {
                    env.bind(*p, Type::Any);
                }
                ov_query::referenced_classes(view, &mut env, body, &mut out);
            }
        }
        ViewElement::Hide(Hide::Attrs { class, .. }) | ViewElement::Hide(Hide::Class(class)) => {
            out.insert(*class);
        }
    }
    out
}

/// Observability counters for a view's population machinery (monotonic;
/// snapshot with [`View::stats`]). Used by tests and benchmarks to assert
/// that the intended code path — cache hit, delta update, index pushdown —
/// actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Population served from the version-keyed cache.
    pub cache_hits: u64,
    /// Population requests the cache could not serve (cold, stale, or
    /// schema-invalidated). Each miss proceeds to a delta update or a full
    /// recomputation.
    pub cache_misses: u64,
    /// Population recomputed from scratch.
    pub recomputations: u64,
    /// Population delta-updated from change journals.
    pub incremental_updates: u64,
    /// Population queries answered from a secondary index.
    pub index_pushdowns: u64,
    /// Cache write-lock acquisitions that had to wait for another thread.
    pub lock_contention: u64,
    /// Population scans that were split across worker threads.
    pub parallel_scans: u64,
    /// Population requests answered from a stale cached population after
    /// recomputation failed (graceful degradation).
    pub stale_serves: u64,
    /// Population recompute attempts retried after a transient fault.
    pub fault_retries: u64,
    /// Parallel population scans that fell back to a sequential scan after
    /// worker chunks faulted or panicked.
    pub seq_fallbacks: u64,
}

/// One counter of [`ViewStats`], bumped through [`StatCells`].
#[derive(Clone, Copy)]
enum Stat {
    CacheHit,
    CacheMiss,
    Recomputation,
    IncrementalUpdate,
    IndexPushdown,
    LockContention,
    ParallelScan,
    StaleServe,
    FaultRetry,
    SeqFallback,
}

/// Atomic storage behind [`ViewStats`]. Relaxed ordering: the counters are
/// monotonic observability data, never synchronization.
#[derive(Debug, Default)]
struct StatCells {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    recomputations: AtomicU64,
    incremental_updates: AtomicU64,
    index_pushdowns: AtomicU64,
    lock_contention: AtomicU64,
    parallel_scans: AtomicU64,
    stale_serves: AtomicU64,
    fault_retries: AtomicU64,
    seq_fallbacks: AtomicU64,
}

impl StatCells {
    fn bump(&self, stat: Stat) {
        let cell = match stat {
            Stat::CacheHit => &self.cache_hits,
            Stat::CacheMiss => &self.cache_misses,
            Stat::Recomputation => &self.recomputations,
            Stat::IncrementalUpdate => &self.incremental_updates,
            Stat::IndexPushdown => &self.index_pushdowns,
            Stat::LockContention => &self.lock_contention,
            Stat::ParallelScan => &self.parallel_scans,
            Stat::StaleServe => &self.stale_serves,
            Stat::FaultRetry => &self.fault_retries,
            Stat::SeqFallback => &self.seq_fallbacks,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ViewStats {
        ViewStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            recomputations: self.recomputations.load(Ordering::Relaxed),
            incremental_updates: self.incremental_updates.load(Ordering::Relaxed),
            index_pushdowns: self.index_pushdowns.load(Ordering::Relaxed),
            lock_contention: self.lock_contention.load(Ordering::Relaxed),
            parallel_scans: self.parallel_scans.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            fault_retries: self.fault_retries.load(Ordering::Relaxed),
            seq_fallbacks: self.seq_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// The paper's name for the population caching policy, used by the
/// [`ViewOptions`] builder (`.population(Population::Incremental)`).
pub use Materialization as Population;

/// Tunable view behaviors. Construct with [`ViewOptions::builder`] — the
/// struct is `#[non_exhaustive]`, so it cannot be built literally outside
/// this crate and new knobs can be added compatibly.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ViewOptions {
    /// Method-resolution conflict policy (schizophrenia handling, §4.3).
    pub policy: ConflictPolicy,
    /// Population caching policy.
    pub materialization: Materialization,
    /// Imaginary identity semantics (§5.1).
    pub identity_mode: IdentityMode,
    /// Parallel population-scan configuration (default: sequential).
    pub parallel: ParallelConfig,
}

impl ViewOptions {
    /// A builder starting from the default options.
    pub fn builder() -> ViewOptionsBuilder {
        ViewOptionsBuilder {
            opts: ViewOptions::default(),
        }
    }
}

/// Builder for [`ViewOptions`].
#[derive(Clone, Debug)]
pub struct ViewOptionsBuilder {
    opts: ViewOptions,
}

impl ViewOptionsBuilder {
    /// Sets the method-resolution conflict policy (§4.3).
    pub fn policy(mut self, policy: ConflictPolicy) -> Self {
        self.opts.policy = policy;
        self
    }

    /// Sets the population caching policy, under its paper name.
    pub fn population(mut self, population: Population) -> Self {
        self.opts.materialization = population;
        self
    }

    /// Sets the population caching policy ([`population`][Self::population]
    /// under its implementation name).
    pub fn materialization(mut self, materialization: Materialization) -> Self {
        self.opts.materialization = materialization;
        self
    }

    /// Sets the imaginary identity semantics (§5.1).
    pub fn identity_mode(mut self, mode: IdentityMode) -> Self {
        self.opts.identity_mode = mode;
        self
    }

    /// Sets the parallel population-scan configuration.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.opts.parallel = parallel;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ViewOptions {
        self.opts
    }
}

/// A summary of a view's degradation state (PR 4's graceful-degradation
/// ladder), for `Session::describe` and the `ovq` shell: how often the
/// view served stale data, retried faults, fell back to sequential scans,
/// and whether the parallel-scan circuit breaker is currently tripped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewHealth {
    /// Populations served from a stale cached generation after recompute
    /// failures.
    pub stale_serves: u64,
    /// Population recompute attempts retried after a transient fault.
    pub fault_retries: u64,
    /// Parallel scans that fell back to sequential execution.
    pub seq_fallbacks: u64,
    /// The parallel-scan circuit breaker is tripped: the view stopped
    /// splitting scans for its lifetime.
    pub parallel_disabled: bool,
}

impl ViewHealth {
    /// True when nothing degraded: no stale serves, retries, fallbacks, or
    /// tripped breaker.
    pub fn is_clean(&self) -> bool {
        *self == ViewHealth::default()
    }
}

impl std::fmt::Display for ViewHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "healthy");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.stale_serves > 0 {
            parts.push(format!("{} stale serve(s)", self.stale_serves));
        }
        if self.fault_retries > 0 {
            parts.push(format!("{} fault retry(ies)", self.fault_retries));
        }
        if self.seq_fallbacks > 0 {
            parts.push(format!("{} seq fallback(s)", self.seq_fallbacks));
        }
        if self.parallel_disabled {
            parts.push("parallel scans disabled".into());
        }
        write!(f, "{}", parts.join(", "))
    }
}

impl View {
    /// The view's name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The dependency edges recorded at bind time: which databases and
    /// which upstream views this definition reads, with the class names
    /// read through each edge.
    pub fn dependencies(&self) -> &[DepEdge] {
        &self.deps
    }

    /// The view's current degradation state (see [`ViewHealth`]).
    pub fn health(&self) -> ViewHealth {
        let stats = self.stats();
        ViewHealth {
            stale_serves: stats.stale_serves,
            fault_retries: stats.fault_retries,
            seq_fallbacks: stats.seq_fallbacks,
            parallel_disabled: self.parallel_strikes.load(Ordering::Relaxed)
                >= PARALLEL_STRIKE_LIMIT,
        }
    }

    /// Eagerly refreshes every virtual and imaginary population, in class
    /// creation order (dependencies before dependents within this view),
    /// and returns how many were refreshed. Under
    /// [`Materialization::Incremental`] each refresh is a delta retest of
    /// the journal-changed oids; the session uses this to propagate a base
    /// write through a view stack in topological order.
    pub fn refresh(&self) -> Result<usize> {
        let mut ids: Vec<ClassId> = self
            .kinds
            .read()
            .iter()
            .filter(|(_, k)| matches!(k, ClassKind::Virtual | ClassKind::Imaginary { .. }))
            .map(|(c, _)| *c)
            .collect();
        ids.sort();
        for &c in &ids {
            self.with_degradation(|| self.population(c))?;
        }
        Ok(ids.len())
    }

    /// A snapshot of the population-machinery counters, aggregated across
    /// all threads.
    pub fn stats(&self) -> ViewStats {
        self.stats.snapshot()
    }

    /// The calling thread's contribution to [`Self::stats`] — how many
    /// cache hits/misses, recomputations, etc. *this* thread caused. Useful
    /// for attributing contention in multi-threaded read workloads.
    pub fn thread_stats(&self) -> ViewStats {
        THREAD_STATS.with(|m| m.borrow().get(&self.token).copied().unwrap_or_default())
    }

    fn bump_stat(&self, stat: Stat) {
        self.stats.bump(stat);
        // Mirror into the process-wide registry: `ViewStats` is the
        // per-view picture, the registry the cross-view aggregate the
        // harness and shell report.
        match stat {
            Stat::CacheHit => ov_oodb::metric_counter!("views.cache_hits").inc(),
            Stat::CacheMiss => ov_oodb::metric_counter!("views.cache_misses").inc(),
            Stat::Recomputation => ov_oodb::metric_counter!("views.recomputations").inc(),
            Stat::IncrementalUpdate => ov_oodb::metric_counter!("views.incremental_updates").inc(),
            Stat::IndexPushdown => ov_oodb::metric_counter!("views.index_pushdowns").inc(),
            Stat::LockContention => ov_oodb::metric_counter!("views.lock_contention").inc(),
            Stat::ParallelScan => ov_oodb::metric_counter!("views.parallel_scans").inc(),
            Stat::StaleServe => ov_oodb::metric_counter!("views.degraded_serves").inc(),
            Stat::FaultRetry => ov_oodb::metric_counter!("views.fault_retries").inc(),
            Stat::SeqFallback => ov_oodb::metric_counter!("views.seq_fallbacks").inc(),
        }
        THREAD_STATS.with(|m| {
            let mut map = m.borrow_mut();
            let s = map.entry(self.token).or_default();
            match stat {
                Stat::CacheHit => s.cache_hits += 1,
                Stat::CacheMiss => s.cache_misses += 1,
                Stat::Recomputation => s.recomputations += 1,
                Stat::IncrementalUpdate => s.incremental_updates += 1,
                Stat::IndexPushdown => s.index_pushdowns += 1,
                Stat::LockContention => s.lock_contention += 1,
                Stat::ParallelScan => s.parallel_scans += 1,
                Stat::StaleServe => s.stale_serves += 1,
                Stat::FaultRetry => s.fault_retries += 1,
                Stat::SeqFallback => s.seq_fallbacks += 1,
            }
        });
    }

    // ------------------------------------------------------------------
    // Thread-local evaluation state (cycle guard + privileged depth)
    // ------------------------------------------------------------------

    /// Runs `f` on this thread's evaluation state for this view. `f` must
    /// not re-enter view code (it holds the thread-local map's borrow).
    fn with_eval<R>(&self, f: impl FnOnce(&mut EvalState) -> R) -> R {
        EVAL_STATE.with(|m| {
            let mut map = m.borrow_mut();
            let state = map.entry(self.token).or_default();
            let r = f(state);
            if state.populating.is_empty() && state.body_depth == 0 {
                map.remove(&self.token);
            }
            r
        })
    }

    /// This thread's privileged-visibility depth.
    fn body_depth(&self) -> u32 {
        self.with_eval(|s| s.body_depth)
    }

    /// Installs evaluation state on a worker thread so population scans
    /// inherit the coordinator's cycle guard and privileged visibility.
    fn adopt_eval_state(&self, populating: &HashSet<ClassId>, body_depth: u32) {
        EVAL_STATE.with(|m| {
            m.borrow_mut().insert(
                self.token,
                EvalState {
                    populating: populating.clone(),
                    body_depth,
                },
            );
        });
    }

    /// Clears a worker thread's evaluation state (counterpart of
    /// [`Self::adopt_eval_state`]).
    fn clear_eval_state(&self) {
        EVAL_STATE.with(|m| {
            m.borrow_mut().remove(&self.token);
        });
    }

    // ------------------------------------------------------------------
    // Sharded population cache
    // ------------------------------------------------------------------

    fn pop_shard(&self, c: ClassId) -> &RwLock<HashMap<ClassId, CachedPop>> {
        &self.pop_cache[c.0 as usize % POP_SHARDS]
    }

    /// Write access to `c`'s cache shard, counting contended acquisitions.
    fn pop_shard_write(
        &self,
        c: ClassId,
    ) -> parking_lot::RwLockWriteGuard<'_, HashMap<ClassId, CachedPop>> {
        let shard = self.pop_shard(c);
        match shard.try_write() {
            Some(guard) => guard,
            None => {
                self.bump_stat(Stat::LockContention);
                shard.write()
            }
        }
    }

    /// All class names visible in the view, sorted.
    pub fn class_names(&self) -> Vec<Symbol> {
        let schema = self.schema.read();
        let mut out: Vec<Symbol> = schema
            .classes()
            .filter(|c| !self.is_hidden_class(c.id))
            .map(|c| c.name)
            .collect();
        out.sort();
        out
    }

    /// Direct superclasses of a (visible) class, by name — exposes the
    /// inferred hierarchy for inspection and tests.
    pub fn parents_of(&self, name: Symbol) -> Result<Vec<Symbol>> {
        let schema = self.schema.read();
        let c = schema.require_class(name)?;
        Ok(schema
            .class(c)
            .parents
            .iter()
            .map(|&p| schema.class(p).name)
            .collect())
    }

    /// Is `sub` (transitively) a subclass of `sup` in the view's inferred
    /// hierarchy?
    pub fn is_subclass_by_name(&self, sub: Symbol, sup: Symbol) -> Result<bool> {
        let schema = self.schema.read();
        let s = schema.require_class(sub)?;
        let p = schema.require_class(sup)?;
        Ok(schema.is_subclass(s, p))
    }

    /// The population of a named class, in oid order (forces evaluation).
    pub fn extent_of(&self, name: Symbol) -> Result<Vec<Oid>> {
        let c = self
            .lookup_class(name)
            .ok_or(OodbError::UnknownClass(name))?;
        self.with_degradation(|| DataSource::extent(self, c))
    }

    /// Evaluates attribute `attr` of `oid` through the view.
    pub fn attr(&self, oid: Oid, attr: Symbol) -> Result<Value> {
        self.with_degradation(|| ov_query::eval_attr(self, oid, attr, &[]))
    }

    /// Evaluates attribute `attr(args…)` of `oid` through the view.
    pub fn attr_with_args(&self, oid: Oid, attr: Symbol, args: &[Value]) -> Result<Value> {
        self.with_degradation(|| ov_query::eval_attr(self, oid, attr, args))
    }

    /// Runs a query string against the view.
    pub fn query(&self, src: &str) -> Result<Value> {
        self.with_degradation(|| ov_query::run_query(self, src))
    }

    /// Brackets a query-layer call at the public boundary: clears any
    /// leftover degradation note (a caller may have abandoned an errored
    /// evaluation), runs `f`, and on error upgrades it to
    /// [`ViewError::Degraded`] when [`Self::population`] noted that its
    /// fallbacks were exhausted. The note rides a thread-local because the
    /// `DataSource` methods between here and `population` speak
    /// `QueryError`, which has no room for view-layer context.
    fn with_degradation<R>(&self, f: impl FnOnce() -> ov_query::Result<R>) -> Result<R> {
        DEGRADED_NOTE.with(|n| n.set(None));
        f().map_err(|e| {
            let e = ViewError::from(e);
            match DEGRADED_NOTE.with(|n| n.take()) {
                Some((class, attempts)) => ViewError::Degraded {
                    class,
                    attempts,
                    cause: Box::new(e),
                },
                None => e,
            }
        })
    }

    /// Runs a query like [`Self::query`] and additionally returns its
    /// [`ov_query::QueryTrace`]: parse / typecheck / optimize / execute
    /// timings plus, for every population request execution triggered,
    /// which path resolved it (cache hit, delta, full recompute) and how
    /// each scan ran (sequential, parallel with chunk count, index
    /// pushdown).
    pub fn explain(&self, src: &str) -> Result<(Value, ov_query::QueryTrace)> {
        self.with_degradation(|| ov_query::run_query_traced(self, src))
    }

    /// Requests the population of virtual (or imaginary) class `class` and
    /// reports how the request was resolved: `CacheHit`, `Delta {
    /// retested }`, or `FullRecompute` with its scans, plus row count and
    /// wall-clock time. The population genuinely runs — the plan is a
    /// record of what happened, not a prediction.
    pub fn explain_population(&self, class: Symbol) -> Result<plan::PopulationTrace> {
        let c = self
            .lookup_class(class)
            .ok_or(OodbError::UnknownClass(class))?;
        match self.kinds.read().get(&c) {
            Some(ClassKind::Virtual) | Some(ClassKind::Imaginary { .. }) => {}
            _ => {
                return Err(ViewError::Definition(format!(
                    "`{class}` is not a virtual or imaginary class; only computed populations \
                     have plans"
                )))
            }
        }
        let (result, events) = plan::collect(|| self.with_degradation(|| self.population(c)));
        result?;
        let name = self.schema.read().class(c).name;
        // The requested class's event completes last (nested populations of
        // other virtual classes finish before it).
        events
            .into_iter()
            .rev()
            .find(|e| e.class == name)
            .ok_or_else(|| {
                ViewError::Definition(format!("population of `{class}` emitted no trace"))
            })
    }

    // ------------------------------------------------------------------
    // Binding internals
    // ------------------------------------------------------------------

    /// Imports one specification, returning the class names it made
    /// visible (the binder records their provenance for the dependency
    /// graph).
    fn do_import(&mut self, system: &System, import: &Import) -> Result<Vec<Symbol>> {
        let handle = system.database(import.db)?;
        let source_idx = self.sources.len();
        let db = handle.read();
        if let Some(core) = db.durable_core() {
            if !self.durable.iter().any(|c| Arc::ptr_eq(c, &core)) {
                self.durable.push(core);
            }
        }
        let mut map: HashMap<ClassId, ClassId> = HashMap::new();
        let mut visible: Vec<Symbol> = Vec::new();
        // Which source classes come in, in creation (= topological) order?
        let roots: Vec<(ClassId, Option<Symbol>)> = match &import.what {
            ov_query::ImportWhat::AllClasses => db.schema.classes().map(|c| (c.id, None)).collect(),
            ov_query::ImportWhat::Class { name, alias } => {
                let root = db.schema.require_class(*name)?;
                // "When classes are imported, they become visible together
                // with their subclasses" (§3).
                let mut ids: Vec<ClassId> = vec![root];
                ids.extend(db.schema.strict_descendants(root));
                ids.sort(); // creation order ⇒ parents before children
                ids.into_iter()
                    .map(|c| (c, if c == root { *alias } else { None }))
                    .collect()
            }
        };
        let imported: HashSet<ClassId> = roots.iter().map(|(c, _)| *c).collect();
        // Phase 1: create the view classes (no attributes yet) so that
        // class-typed attributes can be remapped even across forward and
        // self references.
        for (src_class, alias) in &roots {
            let source = db.schema.class(*src_class);
            let view_name = alias.unwrap_or(source.name);
            let parents: Vec<ClassId> = source
                .parents
                .iter()
                .filter_map(|p| map.get(p).copied())
                .collect();
            let mut schema = self.schema.write();
            let id = schema
                .add_class(view_name, &parents, Vec::new())
                .map_err(|e| match e {
                    OodbError::DuplicateClass(n) => ViewError::ImportConflict {
                        name: n,
                        db: import.db,
                    },
                    other => ViewError::Oodb(other),
                })?;
            drop(schema);
            visible.push(view_name);
            map.insert(*src_class, id);
            self.kinds.write().insert(
                id,
                ClassKind::Imported {
                    source: source_idx,
                    orig: *src_class,
                },
            );
        }
        // Phase 2: attributes. Each imported class carries its own
        // definitions plus — *flattened* — everything it inherits from
        // ancestors that were NOT imported (a partial import must not lose
        // inherited structure).
        for (src_class, _) in &roots {
            let view_id = map[src_class];
            let visible = db.schema.visible_attrs(*src_class);
            let mut defs: Vec<AttrDef> = Vec::new();
            for (_, (def_in, def)) in visible {
                if def_in == *src_class || !imported.contains(&def_in) {
                    defs.push(self.remap_attr(def.clone(), &map));
                }
            }
            let mut schema = self.schema.write();
            for def in defs {
                schema.add_attr(view_id, def)?;
            }
        }
        drop(db);
        self.sources.push(handle);
        self.import_maps.push(map);
        Ok(visible)
    }

    /// Rewrites source class ids inside an attribute signature to view
    /// class ids. References to classes that were not imported degrade to
    /// `any` (the objects stay reachable; their class is just not named in
    /// this view).
    fn remap_attr(&self, mut def: AttrDef, map: &HashMap<ClassId, ClassId>) -> AttrDef {
        def.sig.ty = remap_type(&def.sig.ty, map);
        for (_, t) in &mut def.sig.params {
            *t = remap_type(t, map);
        }
        def
    }

    fn add_hide(&mut self, hide: &Hide) -> Result<()> {
        let _span = ov_oodb::span!("view.hide");
        let schema = self.schema.read();
        match hide {
            Hide::Attrs { attrs, class } => {
                let c = schema.require_class(*class)?;
                for &a in attrs {
                    if !schema.visible_attrs(c).contains_key(&a) {
                        return Err(OodbError::UnknownAttr {
                            class: *class,
                            attr: a,
                        }
                        .into());
                    }
                    self.hidden_attrs.push((c, a));
                }
            }
            Hide::Class(name) => {
                let c = schema.require_class(*name)?;
                self.hidden_classes.insert(c);
                for d in schema.strict_descendants(c) {
                    self.hidden_classes.insert(d);
                }
            }
        }
        Ok(())
    }

    /// Is the definition of `attr` in (defining) class `def_in` hidden?
    /// `hide attribute A in class C` hides the definitions of `A` "in class
    /// C **and all its subclasses**" (§3).
    fn is_hidden_attr(&self, def_in: ClassId, attr: Symbol, schema: &Schema) -> bool {
        if self.body_depth() > 0 {
            // Privileged: the view's own computed-attribute bodies see
            // everything (Example 5 hides City/Street *after* defining the
            // Address attribute over them).
            return false;
        }
        self.hidden_attrs
            .iter()
            .any(|&(c, a)| a == attr && schema.is_subclass(def_in, c))
    }

    fn is_hidden_class(&self, c: ClassId) -> bool {
        self.hidden_classes.contains(&c)
    }

    fn lookup_class(&self, name: Symbol) -> Option<ClassId> {
        let schema = self.schema.read();
        let c = schema.class_by_name(name)?;
        // View-internal definitions (attribute bodies, population queries)
        // may reference hidden classes — the relational bridge hides its
        // staging classes while its imaginary populations select from them.
        if self.is_hidden_class(c) && self.body_depth() == 0 {
            None
        } else {
            Some(c)
        }
    }

    fn define_attribute(&self, decl: &AttrDecl) -> Result<()> {
        let class_id = self
            .lookup_class(decl.class)
            .ok_or(OodbError::UnknownClass(decl.class))?;
        let param_tys: Vec<(Symbol, Type)> = {
            let schema = self.schema.read();
            decl.params
                .iter()
                .map(|(p, t)| Ok((*p, resolve_type(t, &schema).map_err(ViewError::from)?)))
                .collect::<Result<_>>()?
        };
        let declared = {
            let schema = self.schema.read();
            decl.ty
                .as_ref()
                .map(|t| resolve_type(t, &schema).map_err(ViewError::from))
                .transpose()?
        };
        match &decl.body {
            None => {
                // Bodiless declaration: the attribute must already exist as
                // a stored attribute (re-declaring it stored, as the paper's
                // `attribute Address in class Employee;`). A *new* stored
                // attribute cannot be declared in a view — a view "has no
                // proper data of its own" (§3).
                let schema = self.schema.read();
                let exists_stored = schema
                    .visible_attrs(class_id)
                    .get(&decl.name)
                    .is_some_and(|(_, def)| def.is_stored());
                if exists_stored {
                    Ok(())
                } else {
                    Err(ViewError::Definition(format!(
                        "`attribute {} in class {}` without `has value` must re-declare an \
                         existing stored attribute; views cannot store new data",
                        decl.name, decl.class
                    )))
                }
            }
            Some(body) => {
                let ty = match declared {
                    Some(t) => t,
                    None => {
                        // Inference with `self : Class(c)` (§2: types are
                        // inferred when omitted).
                        let mut env = TypeEnv::with_self(Type::Class(class_id));
                        for (p, t) in &param_tys {
                            env.bind(*p, t.clone());
                        }
                        ov_query::infer(self, &mut env, body).map_err(ViewError::from)?
                    }
                };
                // Bodies evaluate per attribute access: optimize once here.
                let def = AttrDef::method(decl.name, param_tys, ty, ov_query::optimize_expr(body));
                self.schema.write().add_attr(class_id, def)?;
                Ok(())
            }
        }
    }

    /// Defines a virtual class from its include list: binds the includes,
    /// infers position (R1/R2), creates the class, adds upward-inherited
    /// attributes. Shared by bind-time definitions and parameterized-class
    /// instantiation.
    fn define_virtual_class(&self, name: Symbol, includes: &[IncludeSpec]) -> Result<ClassId> {
        let n_imaginary = includes
            .iter()
            .filter(|i| matches!(i, IncludeSpec::Imaginary(_)))
            .count();
        if n_imaginary > 1 || (n_imaginary == 1 && includes.len() > 1) {
            return Err(ViewError::MixedImaginary(name));
        }
        let mut wholly: Vec<ClassId> = Vec::new();
        // Guaranteed-superclass units, one per contributor (see
        // `infer::infer_position`).
        let mut units: Vec<Vec<ClassId>> = Vec::new();
        let mut bound: Vec<BoundInclude> = Vec::new();
        let mut plans: Vec<IncPlan> = Vec::new();
        let mut imaginary_core: Option<BTreeMap<Symbol, Type>> = None;
        for inc in includes {
            match inc {
                IncludeSpec::Class(n) => {
                    let c = self.lookup_class(*n).ok_or(OodbError::UnknownClass(*n))?;
                    wholly.push(c);
                    units.push(crate::infer::unit_of(&self.schema.read(), &[c]));
                    bound.push(BoundInclude::Class(c));
                    plans.push(IncPlan::Class(c));
                }
                IncludeSpec::Like(n) => {
                    let spec = self.lookup_class(*n).ok_or(OodbError::UnknownClass(*n))?;
                    let schema = self.schema.read();
                    for class in schema.classes() {
                        if !self.is_hidden_class(class.id) && conforms_to(&schema, class.id, spec) {
                            wholly.push(class.id);
                            units.push(crate::infer::unit_of(&schema, &[class.id]));
                        }
                    }
                    bound.push(BoundInclude::Like { spec });
                    plans.push(IncPlan::Opaque);
                }
                IncludeSpec::Query(q) => {
                    let ty =
                        infer_select_in(self, &mut TypeEnv::new(), q).map_err(ViewError::from)?;
                    let mut constraints: Vec<ClassId> = Vec::new();
                    match &ty {
                        Type::Set(elem) => match &**elem {
                            Type::Class(c) => constraints.push(*c),
                            Type::Any | Type::Nothing => {}
                            other => {
                                return Err(ViewError::NonObjectPopulation {
                                    class: name,
                                    found: format!("{other:?}"),
                                })
                            }
                        },
                        other => {
                            return Err(ViewError::NonObjectPopulation {
                                class: name,
                                found: format!("{other:?}"),
                            })
                        }
                    }
                    // "The type system detects that every object in this
                    // class is both in Rich and in Beautiful" (§4.2): filter
                    // conjuncts `X in C` / `X isa C` on the projected
                    // variable are additional guaranteed superclasses.
                    constraints.extend(self.membership_conjunct_sources(q));
                    units.push(crate::infer::unit_of(&self.schema.read(), &constraints));
                    let optimized = ov_query::optimize_select(q);
                    plans.push(self.incremental_plan(&optimized));
                    // Population queries run on every (re)computation:
                    // fold their constants once, at definition time.
                    bound.push(BoundInclude::Query(optimized));
                }
                IncludeSpec::Imaginary(q) => {
                    let ty =
                        infer_select_in(self, &mut TypeEnv::new(), q).map_err(ViewError::from)?;
                    let core = match &ty {
                        Type::Set(elem) => match &**elem {
                            Type::Tuple(fields) => fields.clone(),
                            other => {
                                return Err(ViewError::NonTuplePopulation {
                                    class: name,
                                    found: format!("{other:?}"),
                                })
                            }
                        },
                        other => {
                            return Err(ViewError::NonTuplePopulation {
                                class: name,
                                found: format!("{other:?}"),
                            })
                        }
                    };
                    imaginary_core = Some(core);
                    bound.push(BoundInclude::Imaginary(ov_query::optimize_select(q)));
                    plans.push(IncPlan::Opaque);
                }
            }
        }
        wholly.sort();
        wholly.dedup();
        // Contributors for upward inheritance: every class that directly
        // feeds the population (wholly-included classes plus the primary
        // constraint classes of queries).
        let contributors: Vec<ClassId> = {
            let mut v: Vec<ClassId> = units
                .iter()
                .flat_map(|u| {
                    // The minimal classes of each unit are the classes the
                    // contributor actually is (not their superclasses).
                    let schema = self.schema.read();
                    let u2 = u.clone();
                    u.iter()
                        .copied()
                        .filter(|&c| !u2.iter().any(|&d| d != c && schema.is_subclass(d, c)))
                        .collect::<Vec<_>>()
                })
                .collect();
            v.sort();
            v.dedup();
            v
        };
        // Pre-expand the hide list: (C, a) hides the definition of `a` in C
        // and every subclass of C. Expanded here (read borrow) because the
        // upward-inheritance closure below runs under the mutable borrow.
        let hidden_expanded: HashSet<(ClassId, Symbol)> = {
            let schema = self.schema.read();
            self.hidden_attrs
                .iter()
                .flat_map(|&(hc, a)| {
                    let mut v = vec![(hc, a)];
                    v.extend(schema.strict_descendants(hc).into_iter().map(|d| (d, a)));
                    v
                })
                .collect()
        };
        // Position by R1/R2 and create the class.
        let class_id = {
            let mut schema = self.schema.write();
            let pos = infer_position(&schema, &units, &wholly);
            // Imaginary classes: core attributes become the class's stored
            // shape ("we call Husband and Wife the *core attributes*", §5).
            let attrs: Vec<AttrDef> = match &imaginary_core {
                Some(core) => core
                    .iter()
                    .map(|(n, t)| AttrDef::stored(*n, t.clone()))
                    .collect(),
                None => Vec::new(),
            };
            let id = schema.add_class(name, &pos.parents, attrs)?;
            for &sub in &pos.new_subclasses {
                schema.add_superclass(sub, id)?;
            }
            // Upward inheritance (§4.3) over all contributors.
            let acquired = upward_attrs(
                &schema,
                &contributors,
                &pos.parents,
                &|def_in: ClassId, attr: Symbol| hidden_expanded.contains(&(def_in, attr)),
            );
            for (attr_name, ty) in acquired {
                if schema.class(id).own_attr(attr_name).is_none() {
                    schema.add_attr(id, AttrDef::abstract_sig(attr_name, ty))?;
                }
            }
            id
        };
        self.kinds.write().insert(
            class_id,
            match imaginary_core {
                Some(core) => ClassKind::Imaginary {
                    core: core.keys().copied().collect(),
                },
                None => ClassKind::Virtual,
            },
        );
        // Compile each maintainable membership predicate once, here at bind
        // time; population scans and delta retests reuse the programs.
        let compiled: Vec<Option<Arc<ov_query::Program>>> = plans
            .iter()
            .map(|p| match p {
                IncPlan::Filter {
                    var,
                    filter: Some(f),
                    ..
                } => ov_query::compile_predicate(f, &[*var]).map(Arc::new),
                _ => None,
            })
            .collect();
        self.virt.write().insert(
            class_id,
            VirtualInfo {
                includes: bound,
                plans,
                compiled,
            },
        );
        Ok(class_id)
    }

    /// Derives a delta-maintenance plan for a population query: only the
    /// canonical specialization shape `select V from V in C [where F]` is
    /// maintainable per object.
    fn incremental_plan(&self, q: &SelectExpr) -> IncPlan {
        let [(var, coll)] = q.bindings.as_slice() else {
            return IncPlan::Opaque;
        };
        let Expr::Name(class_name) = coll else {
            return IncPlan::Opaque;
        };
        if *q.proj != Expr::Name(*var) {
            return IncPlan::Opaque;
        }
        match self.lookup_class(*class_name) {
            Some(class) => IncPlan::Filter {
                class,
                var: *var,
                filter: q.filter.as_deref().cloned(),
            },
            None => IncPlan::Opaque,
        }
    }

    /// Extracts extra population sources from membership conjuncts in the
    /// filter: for `select P from Rich where P in Beautiful`, returns
    /// `[Beautiful]`.
    fn membership_conjunct_sources(&self, q: &SelectExpr) -> Vec<ClassId> {
        let Expr::Name(var) = &*q.proj else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack: Vec<&Expr> = q.filter.iter().map(|b| &**b).collect();
        while let Some(e) = stack.pop() {
            match e {
                Expr::Binary {
                    op: ov_oodb::BinOp::And,
                    lhs,
                    rhs,
                } => {
                    stack.push(lhs);
                    stack.push(rhs);
                }
                Expr::Binary {
                    op: ov_oodb::BinOp::In,
                    lhs,
                    rhs,
                } => {
                    if let (Expr::Name(v), Expr::Name(class)) = (&**lhs, &**rhs) {
                        if v == var {
                            if let Some(c) = self.lookup_class(*class) {
                                out.push(c);
                            }
                        }
                    }
                }
                Expr::IsA { expr, class } => {
                    if let Expr::Name(v) = &**expr {
                        if v == var {
                            if let Some(c) = self.lookup_class(*class) {
                                out.push(c);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Populations and identity
    // ------------------------------------------------------------------

    /// Current versions of all source databases (the population cache key).
    fn source_versions(&self) -> Vec<u64> {
        self.sources.iter().map(|h| h.read().version()).collect()
    }

    /// The population of a virtual/imaginary class, cached.
    ///
    /// Concurrency: two threads may find the cache cold and compute the
    /// same population simultaneously. That is benign — both compute the
    /// same set (the computation only reads source data at the cached
    /// versions) and cache insertion is last-writer-wins with equal values.
    /// We deliberately do NOT hold the shard lock across the computation:
    /// population is re-entrant (computing A may populate B), and blocking
    /// readers of other classes in the same shard for the whole computation
    /// would serialize the read path this refactor exists to parallelize.
    fn population(&self, c: ClassId) -> ov_query::Result<Arc<BTreeSet<Oid>>> {
        if self.with_eval(|s| s.populating.contains(&c)) {
            let name = self.schema.read().class(c).name;
            return Err(ViewError::CyclicVirtualClass(name).into());
        }
        let t0 = std::time::Instant::now();
        let mut span = ov_oodb::span!("view.population");
        plan::begin_population();
        // Transient faults (an injected fault, a flaky source) are retried
        // with a tiny capped backoff before any degradation kicks in.
        // Budget breaches and semantic errors are never retried: the former
        // would breach again immediately, the latter are deterministic.
        let mut attempts = 1u32;
        let result = loop {
            match self.population_inner(c) {
                Ok(ok) => break Ok(ok),
                Err(e) if e.is_transient() && attempts < MAX_POPULATION_ATTEMPTS => {
                    self.bump_stat(Stat::FaultRetry);
                    let _retry_span =
                        ov_oodb::span!("view.population_retry", attempt = attempts as usize);
                    // 50µs, 100µs, 200µs, … capped at 400µs: enough to let a
                    // contended writer finish, small enough to be invisible
                    // to deadlines measured in milliseconds.
                    std::thread::sleep(std::time::Duration::from_micros(
                        50u64 << (attempts - 1).min(3),
                    ));
                    attempts += 1;
                    // A deadline that expired while we slept turns into a
                    // typed cancellation rather than another doomed attempt.
                    if let Some(b) = ov_query::budget::current() {
                        if let Err(breach) = b.check_deadline() {
                            break Err(breach);
                        }
                    }
                }
                Err(e) => break Err(e),
            }
        };
        match result {
            Ok((oids, outcome)) => {
                let nanos = t0.elapsed().as_nanos() as u64;
                let path = match outcome {
                    plan::PopOutcome::CacheHit => {
                        ov_oodb::metric_histogram!("views.population.cache_hit_ns").record(nanos);
                        "cache_hit"
                    }
                    plan::PopOutcome::Delta { .. } => {
                        ov_oodb::metric_histogram!("views.population.delta_ns").record(nanos);
                        "delta"
                    }
                    plan::PopOutcome::FullRecompute => {
                        ov_oodb::metric_histogram!("views.population.recompute_ns").record(nanos);
                        "recompute"
                    }
                    plan::PopOutcome::StaleServe { .. } => {
                        unreachable!("population_inner never reports StaleServe")
                    }
                };
                if span.is_recording() {
                    span.field("class", self.schema.read().class(c).name);
                    span.field("path", path);
                    span.field("rows", oids.len());
                    if attempts > 1 {
                        span.field("retries", (attempts - 1) as usize);
                    }
                }
                if plan::tracing_active() {
                    let name = self.schema.read().class(c).name;
                    plan::end_population(name, outcome, oids.len(), nanos);
                }
                // Opportunistic statistics: a finished population is an
                // exact cardinality observation for the virtual class, keyed
                // to the resolution generation it was computed under.
                if ov_oodb::metrics::profiling_enabled() {
                    let name = self.schema.read().class(c).name;
                    ov_oodb::stats::stats().class(name).note_cardinality(
                        ov_query::DataSource::resolution_generation(self),
                        oids.len() as u64,
                    );
                }
                Ok(oids)
            }
            Err(e) => self.degrade(c, e, attempts, t0, span),
        }
    }

    /// The failure tail of [`Self::population`]: serves the last good
    /// cached population (any version — it is by definition stale) when the
    /// failure is degradable, else lets the typed error propagate, noting
    /// exhausted degradation for [`Self::with_degradation`] when the
    /// failure was fault-induced.
    ///
    /// A stale serve can never mix generations: the cache holds one
    /// `Arc<BTreeSet<Oid>>` per class, swapped atomically under the shard
    /// lock, so callers see either the old population or the new one in
    /// full — never a blend.
    fn degrade(
        &self,
        c: ClassId,
        e: QueryError,
        attempts: u32,
        t0: std::time::Instant,
        mut span: ov_oodb::SpanGuard,
    ) -> ov_query::Result<Arc<BTreeSet<Oid>>> {
        let fault_induced = e.is_transient() || matches!(e, QueryError::Panicked { .. });
        let degradable = fault_induced
            || matches!(
                e,
                QueryError::Cancelled(_) | QueryError::ResourceExhausted(_)
            );
        if degradable {
            let stale = self.pop_shard(c).read().get(&c).map(|p| p.oids.clone());
            if let Some(oids) = stale {
                self.bump_stat(Stat::StaleServe);
                let nanos = t0.elapsed().as_nanos() as u64;
                ov_oodb::metric_histogram!("views.population.stale_serve_ns").record(nanos);
                if span.is_recording() {
                    span.field("class", self.schema.read().class(c).name);
                    span.field("path", "stale_serve");
                    span.field("attempts", attempts as usize);
                }
                if plan::tracing_active() {
                    let name = self.schema.read().class(c).name;
                    plan::end_population(
                        name,
                        plan::PopOutcome::StaleServe { attempts },
                        oids.len(),
                        nanos,
                    );
                }
                return Ok(oids);
            }
        }
        plan::abort_population();
        span.field("path", "error");
        if fault_induced {
            // No cached fallback: record that degradation was attempted
            // and exhausted, so the public boundary can say so.
            let name = self.schema.read().class(c).name;
            DEGRADED_NOTE.with(|n| n.set(Some((name, attempts))));
        }
        Err(e)
    }

    /// The un-traced body of [`Self::population`]: resolves the request and
    /// reports which of the three paths did it.
    fn population_inner(
        &self,
        c: ClassId,
    ) -> ov_query::Result<(Arc<BTreeSet<Oid>>, plan::PopOutcome)> {
        let versions = self.source_versions();
        let schema_len = self.schema.read().len();
        if self.materialization != Materialization::AlwaysRecompute {
            if let Some(cached) = self.pop_shard(c).read().get(&c) {
                if cached.versions == versions && cached.schema_len == schema_len {
                    self.bump_stat(Stat::CacheHit);
                    return Ok((cached.oids.clone(), plan::PopOutcome::CacheHit));
                }
            }
            self.bump_stat(Stat::CacheMiss);
        }
        if self.materialization == Materialization::Incremental {
            if let Some((updated, retested)) = self.try_incremental(c, &versions, schema_len)? {
                self.bump_stat(Stat::IncrementalUpdate);
                let oids = Arc::new(updated);
                self.store_pop(c, versions, schema_len, oids.clone());
                return Ok((oids, plan::PopOutcome::Delta { retested }));
            }
        }
        self.bump_stat(Stat::Recomputation);
        // Population queries are view-internal definitions: like attribute
        // bodies, they see through the view's hides (paper Example 5 hides
        // the very attributes its imaginary Address class selects). The
        // bracket restores on unwind too: a panicking recompute must not
        // leak privileged visibility into later queries on this thread.
        let result = {
            let _guard = PopBracket::enter(self, c);
            self.compute_population(c)
        };
        let oids = Arc::new(result?);
        self.store_pop(c, versions, schema_len, oids.clone());
        Ok((oids, plan::PopOutcome::FullRecompute))
    }

    fn store_pop(
        &self,
        c: ClassId,
        versions: Vec<u64>,
        schema_len: usize,
        oids: Arc<BTreeSet<Oid>>,
    ) {
        self.pop_shard_write(c).insert(
            c,
            CachedPop {
                versions,
                schema_len,
                oids,
            },
        );
    }

    /// Attempts a delta update of `c`'s cached population. Returns the
    /// patched population together with how many changed oids were
    /// re-tested, or `Ok(None)` when a full recompute is required (no
    /// cache, journal gap, schema change, or an opaque include).
    fn try_incremental(
        &self,
        c: ClassId,
        versions: &[u64],
        schema_len: usize,
    ) -> ov_query::Result<Option<(BTreeSet<Oid>, usize)>> {
        let cached = match self.pop_shard(c).read().get(&c) {
            Some(entry) => entry.clone(),
            None => return Ok(None),
        };
        if cached.schema_len != schema_len {
            return Ok(None);
        }
        let info = self
            .virt
            .read()
            .get(&c)
            .cloned()
            .expect("population requested for non-virtual class");
        if info.plans.iter().any(|p| matches!(p, IncPlan::Opaque)) {
            return Ok(None);
        }
        // Collect the changed oids from every source's journal.
        let mut changed: BTreeSet<Oid> = BTreeSet::new();
        for (idx, handle) in self.sources.iter().enumerate() {
            let db = handle.read();
            match db.store.changes_since(cached.versions[idx]) {
                Some(oids) => changed.extend(oids),
                None => {
                    // Journal gap: the store trimmed past our cached
                    // version, so the delta is unrecoverable.
                    ov_oodb::metric_counter!("views.journal_gap_fallbacks").inc();
                    return Ok(None);
                }
            }
        }
        let _ = versions;
        if changed.is_empty() {
            return Ok(Some(((*cached.oids).clone(), 0)));
        }
        // Re-test membership only for the changed oids, with the same
        // privileged visibility and cycle guards as a full computation.
        let retested = changed.len();
        let result = {
            let _guard = PopBracket::enter(self, c);
            (|| -> ov_query::Result<BTreeSet<Oid>> {
                let mut set = (*cached.oids).clone();
                for oid in changed {
                    if self.delta_member(&info, oid)? {
                        set.insert(oid);
                    } else {
                        set.remove(&oid);
                    }
                }
                Ok(set)
            })()
        };
        result.map(|set| Some((set, retested)))
    }

    /// Does any include admit `oid` right now (per its delta plan)?
    fn delta_member(&self, info: &VirtualInfo, oid: Oid) -> ov_query::Result<bool> {
        // A deleted base object is a member of nothing.
        if !DataSource::object_exists(self, oid) {
            return Ok(false);
        }
        for (idx, plan) in info.plans.iter().enumerate() {
            match plan {
                IncPlan::Class(ci) => {
                    if DataSource::is_member(self, oid, *ci)? {
                        return Ok(true);
                    }
                }
                IncPlan::Filter { class, var, filter } => {
                    if DataSource::is_member(self, oid, *class)? {
                        match filter {
                            None => return Ok(true),
                            // Retest with the bind-time compiled predicate
                            // when one exists (same steps and errors as the
                            // interpreter, minus the tree walk).
                            Some(_)
                                if ov_query::compiled_enabled() && info.compiled[idx].is_some() =>
                            {
                                let prog = info.compiled[idx].as_deref().expect("checked");
                                let mut scan = ov_query::Scan::new(prog, self);
                                scan.bind(0, Value::Oid(oid));
                                if ov_query::truthy(&scan.run(0)?) {
                                    return Ok(true);
                                }
                            }
                            Some(f) => {
                                let mut env = ov_query::Env::new();
                                env.bind(*var, Value::Oid(oid));
                                let keep = ov_query::Evaluator::new(self).eval(f, &mut env)?;
                                if ov_query::truthy(&keep) {
                                    return Ok(true);
                                }
                            }
                        }
                    }
                }
                IncPlan::Opaque => unreachable!("checked by try_incremental"),
            }
        }
        Ok(false)
    }

    /// Filters `extent` by `filter` (with `var` bound to each object) on a
    /// scoped worker pool (see [`PopBracket`] for the eval-state bracket). Workers inherit the calling thread's evaluation
    /// state — the in-progress population set (cycle guard) and the
    /// privileged-visibility depth — so the filter sees exactly what a
    /// sequential scan would see. The first error (in chunk order) wins.
    /// The planner's row estimate for a canonical specialization query:
    /// estimated class cardinality × filter selectivity, from the
    /// statistics plane. `None` when the planner is off, the query is not
    /// a single-binding class scan, or the class has no warm cardinality.
    fn scan_estimate(&self, q: &SelectExpr) -> Option<u64> {
        if !ov_query::planner_enabled() {
            return None;
        }
        let [(var, Expr::Name(class_name))] = q.bindings.as_slice() else {
            return None;
        };
        ov_query::estimate_select(*class_name, *var, q.filter.as_deref())
    }

    fn parallel_filter(
        &self,
        extent: &[Oid],
        var: Symbol,
        filter: Option<&Expr>,
        compiled: Option<&ov_query::Program>,
        est_rows: Option<u64>,
    ) -> ov_query::Result<BTreeSet<Oid>> {
        let (populating, depth) = self.with_eval(|s| (s.populating.clone(), s.body_depth));
        // Batch size is thread-scoped; read it on the coordinator and apply
        // it inside every worker's chunk loop.
        let batch = ov_query::batch_rows();
        let workers = self.parallel.workers_for(extent.len());
        let chunk_len = extent.len().div_ceil(workers);
        let engine = if compiled.is_some() {
            plan::Engine::compiled_now()
        } else {
            plan::Engine::Interpreted
        };
        let chunks = extent.len().div_ceil(chunk_len);
        // Work counters cross the thread boundary through shared atomics:
        // each worker measures its own chunk (including nested scans inside
        // computed-attribute bodies) in a thread-local frame, then folds the
        // work counters here. Budget charges are *not* folded — workers
        // bracket a shared budget concurrently, so their deltas overlap; the
        // coordinator's own frame below measures the true total.
        let shared: [AtomicU64; 5] = std::array::from_fn(|_| AtomicU64::new(0));
        let (result, actuals) = plan::with_scan_actuals(|| {
            let results: Vec<ov_query::Result<BTreeSet<Oid>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = extent
                    .chunks(chunk_len)
                    .map(|chunk| {
                        let populating = &populating;
                        let shared = &shared;
                        scope.spawn(move || {
                            // Per-chunk span, emitted on the worker thread so
                            // the flight recorder attributes it to the worker.
                            let _chunk_span = ov_oodb::span!("view.scan_chunk", len = chunk.len());
                            self.adopt_eval_state(populating, depth);
                            let scan = || -> ov_query::Result<BTreeSet<Oid>> {
                                // Failpoint: per-chunk errors and panics, for
                                // exercising the sequential-fallback breaker.
                                if ov_oodb::faults::enabled() {
                                    ov_oodb::faults::hit("view.scan_chunk")
                                        .map_err(OodbError::Fault)?;
                                }
                                let mut actuals = plan::ScanActuals::default();
                                // Each chunk builds its own executor: the
                                // register file, value stack, and resolution
                                // caches are per-thread state.
                                let mut exec = compiled.map(|prog| ov_query::Scan::new(prog, self));
                                let r = (|| -> ov_query::Result<BTreeSet<Oid>> {
                                    let mut keep = BTreeSet::new();
                                    if let Some(scan) = exec.as_mut() {
                                        let sub_len = if batch == 0 {
                                            chunk.len().max(1)
                                        } else {
                                            batch
                                        };
                                        for sub in chunk.chunks(sub_len) {
                                            if batch > 0 {
                                                let rows: Vec<Value> =
                                                    sub.iter().map(|&o| Value::Oid(o)).collect();
                                                scan.begin_batch(0, &rows);
                                            }
                                            for (i, &oid) in sub.iter().enumerate() {
                                                scan.bind(0, Value::Oid(oid));
                                                actuals.rows_scanned += 1;
                                                if ov_query::truthy(&scan.run_row(0, i)?) {
                                                    actuals.rows_matched += 1;
                                                    keep.insert(oid);
                                                }
                                            }
                                        }
                                        return Ok(keep);
                                    }
                                    let ev = ov_query::Evaluator::new(self);
                                    for &oid in chunk {
                                        actuals.rows_scanned += 1;
                                        let ok = match filter {
                                            None => true,
                                            Some(f) => {
                                                let mut env = ov_query::Env::new();
                                                env.bind(var, Value::Oid(oid));
                                                ov_query::truthy(&ev.eval(f, &mut env)?)
                                            }
                                        };
                                        if ok {
                                            actuals.rows_matched += 1;
                                            keep.insert(oid);
                                        }
                                    }
                                    Ok(keep)
                                })();
                                if let Some(scan) = exec.as_mut() {
                                    actuals.absorb(&scan.take_actuals());
                                }
                                plan::add_actuals(&actuals);
                                r
                            };
                            let (r, a) = plan::with_scan_actuals(scan);
                            for (slot, v) in shared.iter().zip([
                                a.rows_scanned,
                                a.rows_matched,
                                a.batches,
                                a.cache_hits,
                                a.cache_misses,
                            ]) {
                                slot.fetch_add(v, Ordering::Relaxed);
                            }
                            self.clear_eval_state();
                            r
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        // A panicking chunk becomes a typed per-chunk error
                        // instead of tearing down the coordinator; the worker's
                        // eval state dies with its thread.
                        Err(payload) => Err(QueryError::Panicked {
                            site: "view.scan_chunk",
                            msg: ov_query::panic_message(&payload),
                        }),
                    })
                    .collect()
            });
            plan::add_actuals(&plan::ScanActuals {
                rows_scanned: shared[0].load(Ordering::Relaxed),
                rows_matched: shared[1].load(Ordering::Relaxed),
                batches: shared[2].load(Ordering::Relaxed),
                cache_hits: shared[3].load(Ordering::Relaxed),
                cache_misses: shared[4].load(Ordering::Relaxed),
                ..Default::default()
            });
            let mut out = BTreeSet::new();
            for r in results {
                out.extend(r?);
            }
            Ok(out)
        });
        plan::record_scan_est(
            plan::ScanKind::Parallel { chunks, engine },
            actuals,
            est_rows,
        );
        result
    }

    fn compute_population(&self, c: ClassId) -> ov_query::Result<BTreeSet<Oid>> {
        // Failpoint: lets the chaos harness fail (or delay, or panic) a
        // recompute as a whole, exercising the retry / stale-serve paths.
        if ov_oodb::faults::enabled() {
            ov_oodb::faults::hit("view.population_recompute").map_err(OodbError::Fault)?;
        }
        let info = self
            .virt
            .read()
            .get(&c)
            .cloned()
            .expect("population requested for non-virtual class");
        let mut out = BTreeSet::new();
        for (idx, inc) in info.includes.iter().enumerate() {
            match inc {
                BoundInclude::Class(ci) => {
                    out.extend(DataSource::extent(self, *ci)?);
                }
                BoundInclude::Query(q) => {
                    // The bind-time compiled membership predicate, unless
                    // `.engine interp` turned the bytecode engine off.
                    let compiled = if ov_query::compiled_enabled() {
                        info.compiled[idx].as_deref()
                    } else {
                        None
                    };
                    // Index pushdown: a specialization query with an
                    // equality conjunct on an indexed stored attribute is
                    // answered from the index instead of scanning the
                    // extent.
                    let est = self.scan_estimate(q);
                    if let Some((candidates, index)) = self.index_candidates(q) {
                        self.bump_stat(Stat::IndexPushdown);
                        let engine = if compiled.is_some() {
                            plan::Engine::compiled_now()
                        } else {
                            plan::Engine::Interpreted
                        };
                        let var = q.bindings[0].0;
                        let (r, actuals) = plan::with_scan_actuals(|| -> ov_query::Result<()> {
                            let mut actuals = plan::ScanActuals::default();
                            let mut exec = compiled.map(|prog| ov_query::Scan::new(prog, self));
                            let r = (|| -> ov_query::Result<()> {
                                if let Some(scan) = exec.as_mut() {
                                    let batch = ov_query::batch_rows();
                                    let sub_len = if batch == 0 {
                                        candidates.len().max(1)
                                    } else {
                                        batch
                                    };
                                    for sub in candidates.chunks(sub_len) {
                                        if batch > 0 {
                                            let rows: Vec<Value> =
                                                sub.iter().map(|&o| Value::Oid(o)).collect();
                                            scan.begin_batch(0, &rows);
                                        }
                                        for (i, &oid) in sub.iter().enumerate() {
                                            scan.bind(0, Value::Oid(oid));
                                            actuals.rows_scanned += 1;
                                            if ov_query::truthy(&scan.run_row(0, i)?) {
                                                actuals.rows_matched += 1;
                                                out.insert(oid);
                                            }
                                        }
                                    }
                                    return Ok(());
                                }
                                for oid in candidates {
                                    actuals.rows_scanned += 1;
                                    let mut env = ov_query::Env::new();
                                    env.bind(var, Value::Oid(oid));
                                    let keep = match &q.filter {
                                        None => true,
                                        Some(f) => ov_query::truthy(
                                            &ov_query::Evaluator::new(self).eval(f, &mut env)?,
                                        ),
                                    };
                                    if keep {
                                        actuals.rows_matched += 1;
                                        out.insert(oid);
                                    }
                                }
                                Ok(())
                            })();
                            if let Some(scan) = exec.as_mut() {
                                actuals.absorb(&scan.take_actuals());
                            }
                            plan::add_actuals(&actuals);
                            r
                        });
                        plan::record_scan_est(
                            plan::ScanKind::IndexPushdown { index, engine },
                            actuals,
                            est,
                        );
                        r?;
                        continue;
                    }
                    // Parallel scan: a specialization query over a plain
                    // class extent splits across worker threads when the
                    // extent is large enough. Guarded on the binding name
                    // not shadowing a named object, so the collection is
                    // genuinely the class extent the sequential evaluator
                    // would resolve to.
                    if let IncPlan::Filter { class, var, filter } = self.incremental_plan(q) {
                        let Expr::Name(coll_name) = &q.bindings[0].1 else {
                            unreachable!("IncPlan::Filter implies a Name collection")
                        };
                        if !q.the && ov_query::DataSource::named_object(self, *coll_name).is_none()
                        {
                            let extent = DataSource::extent(self, class)?;
                            // Strategy choice: the cost model weighs the
                            // split's fixed overhead against the per-worker
                            // share; planner off keeps the fixed threshold.
                            let split = if ov_query::planner_enabled() {
                                ov_query::planner::choose_split(
                                    extent.len(),
                                    self.parallel.workers_for(extent.len()),
                                    self.parallel.threshold,
                                )
                            } else {
                                self.parallel.should_split(extent.len())
                            };
                            if split
                                && self.parallel_strikes.load(Ordering::Relaxed)
                                    < PARALLEL_STRIKE_LIMIT
                            {
                                self.bump_stat(Stat::ParallelScan);
                                match self.parallel_filter(
                                    &extent,
                                    var,
                                    filter.as_ref(),
                                    compiled,
                                    est,
                                ) {
                                    Ok(set) => {
                                        self.parallel_strikes.store(0, Ordering::Relaxed);
                                        out.extend(set);
                                        continue;
                                    }
                                    // Chunk faults and panics degrade to the
                                    // sequential scan below; enough strikes
                                    // in a row trip the breaker and the view
                                    // stops splitting scans. Budget breaches
                                    // propagate — a sequential retry would
                                    // breach the same shared counters.
                                    Err(e)
                                        if e.is_transient()
                                            || matches!(e, QueryError::Panicked { .. }) =>
                                    {
                                        let strikes =
                                            self.parallel_strikes.fetch_add(1, Ordering::Relaxed)
                                                + 1;
                                        self.bump_stat(Stat::SeqFallback);
                                        let _s = ov_oodb::span!(
                                            "view.seq_fallback",
                                            strikes = strikes as usize
                                        );
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                            // Compiled sequential scan: same rows, budget
                            // steps, and errors as the `eval_select` below,
                            // minus the per-row tree walk and Env clones.
                            if let Some(prog) = compiled {
                                let (r, actuals) = plan::with_scan_actuals(
                                    || -> ov_query::Result<BTreeSet<Oid>> {
                                        let mut actuals = plan::ScanActuals::default();
                                        let mut scan = ov_query::Scan::new(prog, self);
                                        let r = (|| -> ov_query::Result<BTreeSet<Oid>> {
                                            let budget = ov_query::budget::current();
                                            let batch = ov_query::batch_rows();
                                            // One node entry for the collection name,
                                            // then per row the filter and (on keep) the
                                            // projection node — the tree walker's exact
                                            // accounting, preserved within each batch.
                                            scan.step(1)?;
                                            let mut kept = BTreeSet::new();
                                            let sub_len = if batch == 0 {
                                                extent.len().max(1)
                                            } else {
                                                batch
                                            };
                                            for sub in extent.chunks(sub_len) {
                                                if batch > 0 {
                                                    let rows: Vec<Value> = sub
                                                        .iter()
                                                        .map(|&o| Value::Oid(o))
                                                        .collect();
                                                    scan.begin_batch(0, &rows);
                                                }
                                                for (i, &oid) in sub.iter().enumerate() {
                                                    scan.bind(0, Value::Oid(oid));
                                                    actuals.rows_scanned += 1;
                                                    if ov_query::truthy(&scan.run_row(1, i)?) {
                                                        actuals.rows_matched += 1;
                                                        scan.step(1)?;
                                                        if kept.insert(oid) {
                                                            if let Some(b) = &budget {
                                                                b.note_rows(1)?;
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                            Ok(kept)
                                        })();
                                        actuals.absorb(&scan.take_actuals());
                                        plan::add_actuals(&actuals);
                                        r
                                    },
                                );
                                plan::record_scan_est(
                                    plan::ScanKind::Sequential {
                                        engine: plan::Engine::compiled_now(),
                                    },
                                    actuals,
                                    est,
                                );
                                out.extend(r?);
                                continue;
                            }
                        }
                    }
                    let (r, actuals) = plan::with_scan_actuals(|| eval_select(self, q));
                    plan::record_scan_est(
                        plan::ScanKind::Sequential {
                            engine: plan::Engine::Interpreted,
                        },
                        actuals,
                        est,
                    );
                    let v = r?;
                    let Value::Set(items) = v else {
                        unreachable!("select returns a set")
                    };
                    for item in items {
                        match item {
                            Value::Oid(o) => {
                                out.insert(o);
                            }
                            Value::Null => {}
                            other => {
                                let name = self.schema.read().class(c).name;
                                return Err(ViewError::NonObjectPopulation {
                                    class: name,
                                    found: other.kind().to_string(),
                                }
                                .into());
                            }
                        }
                    }
                }
                BoundInclude::Like { spec } => {
                    // Re-scan: classes defined after this one are admitted
                    // automatically.
                    let populating = self.with_eval(|s| s.populating.clone());
                    let matches: Vec<ClassId> = {
                        let schema = self.schema.read();
                        schema
                            .classes()
                            .filter(|cl| {
                                cl.id != c
                                    && !self.is_hidden_class(cl.id)
                                    && !populating.contains(&cl.id)
                                    && conforms_to(&schema, cl.id, *spec)
                            })
                            .map(|cl| cl.id)
                            .collect()
                    };
                    for m in matches {
                        out.extend(DataSource::extent(self, m)?);
                    }
                }
                BoundInclude::Imaginary(q) => {
                    let v = eval_select(self, q)?;
                    let Value::Set(items) = v else {
                        unreachable!("select returns a set")
                    };
                    for item in items {
                        match item {
                            Value::Tuple(t) => {
                                out.insert(self.imaginary_oid(c, t));
                            }
                            other => {
                                let name = self.schema.read().class(c).name;
                                return Err(ViewError::NonTuplePopulation {
                                    class: name,
                                    found: other.kind().to_string(),
                                }
                                .into());
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// If `q` is a canonical specialization query over an *imported* class
    /// with an equality conjunct `var.A = literal` on an attribute the
    /// source database indexes, returns the candidate oids from the index
    /// together with the index's `Class.Attr` label (the full filter is
    /// still applied by the caller).
    fn index_candidates(&self, q: &SelectExpr) -> Option<(Vec<Oid>, String)> {
        let [(var, Expr::Name(class_name))] = q.bindings.as_slice() else {
            return None;
        };
        if *q.proj != Expr::Name(*var) {
            return None;
        }
        let class = self.lookup_class(*class_name)?;
        let ClassKind::Imported { source, orig } = self.kinds.read().get(&class).cloned()? else {
            return None;
        };
        // Find an equality conjunct `var.A = lit` (either orientation).
        let filter = q.filter.as_deref()?;
        let (attr, value) = find_eq_conjunct(filter, *var)?;
        // Cost-based veto: on a low-NDV attribute each index posting list
        // is a large fraction of the extent, so probing the index and then
        // re-filtering loses to the straight compiled scan. Unmeasured
        // attributes keep the historical pushdown-always behavior.
        if ov_query::planner_enabled() && !ov_query::planner::index_worthwhile(*class_name, attr) {
            return None;
        }
        let db = self.sources[source].read();
        let candidates = db.indexed_deep_lookup(orig, attr, &value)?;
        let label = format!("{}.{attr}", db.schema.class(orig).name);
        Some((candidates, label))
    }

    /// Maps a core tuple to its imaginary oid (§5.1): "there could be a
    /// table giving the mapping between the tuples and oid's. In this way,
    /// we are guaranteed that the same tuple will be assigned the same oid
    /// each time the class C is invoked. (Note that a tuple will generate a
    /// different oid when used in a different class.)"
    fn imaginary_oid(&self, class: ClassId, core: Tuple) -> Oid {
        if self.identity_mode == IdentityMode::Table {
            // Resolve the durable class *name* before the identity lock:
            // names are the durable key (ids are rebuilt per bind), and
            // taking the schema lock later would invert lock orders.
            let durable_name = if self.durable.is_empty() {
                None
            } else {
                Some(self.schema.read().class(class).name)
            };
            // Check-and-assign under one write lock: two threads mapping
            // the same tuple concurrently must agree on its oid.
            let mut identity = self.identity.write();
            let table = identity.entry(class).or_default();
            if let Some(&oid) = table.get(&core) {
                return oid;
            }
            let oid = Oid(self.next_imaginary.fetch_add(1, Ordering::Relaxed));
            table.insert(core.clone(), oid);
            drop(identity);
            self.imaginary.write().insert(
                oid,
                ImaginaryObject {
                    class,
                    core: core.clone(),
                },
            );
            // Only the winning assignment reaches the WAL; losers returned
            // early above. Logging happens outside every lock.
            if let Some(name) = durable_name {
                for d in &self.durable {
                    d.log_identity_assign(self.name, name, core.clone(), oid);
                }
            }
            oid
        } else {
            let oid = Oid(self.next_imaginary.fetch_add(1, Ordering::Relaxed));
            self.imaginary
                .write()
                .insert(oid, ImaginaryObject { class, core });
            oid
        }
    }

    /// The core attribute names of a named imaginary class (§5), sorted.
    pub fn core_attrs(&self, name: Symbol) -> Option<Vec<Symbol>> {
        let c = self.lookup_class(name)?;
        match self.kinds.read().get(&c) {
            Some(ClassKind::Imaginary { core }) => Some(core.clone()),
            _ => None,
        }
    }

    /// Garbage-collects the identity table of imaginary class `name`:
    /// entries whose core tuple is no longer produced by the population
    /// query are dropped (with their cached imaginary objects). Live
    /// entries keep their oids.
    ///
    /// DECISION: the paper keeps the table abstract ("there could be a
    /// table giving the mapping"); unbounded growth under churn (Example 6)
    /// is real, so we expose collection as an explicit, user-invoked
    /// choice — collecting implicitly would *change identity semantics*
    /// for tuples that disappear and later reappear.
    ///
    /// Returns the number of entries removed.
    pub fn gc_identity(&self, name: Symbol) -> Result<usize> {
        let class = self
            .lookup_class(name)
            .ok_or(OodbError::UnknownClass(name))?;
        // Force a fresh population so the live-oid set is current.
        let live = self.population(class).map_err(ViewError::from)?;
        let mut identity = self.identity.write();
        let Some(table) = identity.get_mut(&class) else {
            return Ok(0);
        };
        let dead: Vec<(Tuple, Oid)> = table
            .iter()
            .filter(|(_, o)| !live.contains(o))
            .map(|(t, o)| (t.clone(), *o))
            .collect();
        table.retain(|_, oid| live.contains(oid));
        let mut imaginary = self.imaginary.write();
        for (_, o) in &dead {
            imaginary.remove(o);
        }
        drop(imaginary);
        drop(identity);
        if !self.durable.is_empty() && !dead.is_empty() {
            let class_name = self.schema.read().class(class).name;
            for (tuple, _) in &dead {
                for d in &self.durable {
                    d.log_identity_drop(self.name, class_name, tuple);
                }
            }
        }
        Ok(dead.len())
    }

    /// Number of identity-table entries for a named imaginary class
    /// (observability for tests and benchmarks).
    pub fn identity_table_len(&self, name: Symbol) -> usize {
        let Some(c) = self.lookup_class(name) else {
            return 0;
        };
        self.identity.read().get(&c).map_or(0, |t| t.len())
    }

    // ------------------------------------------------------------------
    // Object-level plumbing
    // ------------------------------------------------------------------

    /// The view class an object presents as: its imaginary class, or its
    /// real class mapped through the imports. Errors if the class was not
    /// imported.
    fn view_class_of(&self, oid: Oid) -> ov_query::Result<ClassId> {
        if let Some(im) = self.imaginary.read().get(&oid) {
            return Ok(im.class);
        }
        for (idx, handle) in self.sources.iter().enumerate() {
            let db = handle.read();
            if let Some(obj) = db.store.get(oid) {
                return self.import_maps[idx]
                    .get(&obj.class)
                    .copied()
                    .ok_or_else(|| ViewError::NotVisible(oid).into());
            }
        }
        Err(QueryError::from(OodbError::UnknownObject(oid)))
    }

    /// All classes from which attribute resolution may start for `oid`:
    /// its presented class (or nearest visible ancestors if that class is
    /// hidden) plus every virtual class whose population contains it.
    pub(crate) fn membership_roots(
        &self,
        oid: Oid,
        relevant_to: Option<Symbol>,
    ) -> ov_query::Result<Vec<ClassId>> {
        let base = self.view_class_of(oid)?;
        let mut roots: Vec<ClassId> = if self.is_hidden_class(base) && self.body_depth() == 0 {
            // Nearest visible ancestors.
            let schema = self.schema.read();
            let mut visible: Vec<ClassId> = schema
                .ancestors(base)
                .into_iter()
                .filter(|&a| !self.is_hidden_class(a))
                .collect();
            let all = visible.clone();
            visible.retain(|&a| !all.iter().any(|&b| b != a && schema.is_subclass(b, a)));
            if visible.is_empty() {
                return Err(ViewError::NotVisible(oid).into());
            }
            visible
        } else {
            vec![base]
        };
        // Virtual memberships (overlapping classes, §4.2). Classes being
        // populated right now are skipped — an attribute defined on a class
        // cannot be used inside that class's own population query. Classes
        // that cannot possibly define `relevant_to` are skipped without
        // populating them: membership only matters to resolution when some
        // ancestor actually provides a definition, and skipping the rest
        // avoids both wasted work and spurious population cycles.
        let populating = self.with_eval(|s| s.populating.clone());
        let candidates: Vec<ClassId> = {
            let virt = self.virt.read();
            let schema = self.schema.read();
            // Definitions already reachable through the base roots: a
            // virtual membership is only *relevant* to resolving `attr` if
            // it contributes a definition the base chain does not.
            let base_defs: HashSet<ClassId> = match relevant_to {
                None => HashSet::new(),
                Some(_) => roots
                    .iter()
                    .flat_map(|&r| ClassGraph::ancestors(&*schema, r))
                    .collect(),
            };
            virt.keys()
                .copied()
                .filter(|v| !populating.contains(v) && !roots.contains(v))
                .filter(|&v| match relevant_to {
                    None => true,
                    Some(attr) => ClassGraph::ancestors(&*schema, v).iter().any(|&a| {
                        !base_defs.contains(&a)
                            && schema
                                .class(a)
                                .own_attr(attr)
                                .is_some_and(|d| !d.is_abstract())
                    }),
                })
                .collect()
        };
        for v in candidates {
            if self.population(v)?.contains(&oid) {
                roots.push(v);
            }
        }
        roots.sort();
        roots.dedup();
        Ok(roots)
    }

    // ------------------------------------------------------------------
    // Updates through the view
    // ------------------------------------------------------------------

    /// Creates an object through the view. Rejected for virtual and
    /// imaginary classes ("it is not possible for a user to insert an
    /// object directly into a virtual class", §4.1); imported classes
    /// delegate to their source database.
    pub fn insert(&self, class: Symbol, value: Value) -> Result<Oid> {
        let c = self
            .lookup_class(class)
            .ok_or(OodbError::UnknownClass(class))?;
        let kind = self.kinds.read().get(&c).cloned();
        match kind {
            Some(ClassKind::Imported { source, orig }) => {
                let mut db = self.sources[source].write();
                Ok(db.create_object(orig, value)?)
            }
            Some(ClassKind::Virtual) | Some(ClassKind::Imaginary { .. }) => {
                Err(ViewError::VirtualInsert(class))
            }
            None => Err(OodbError::UnknownClass(class).into()),
        }
    }

    /// Updates a stored attribute through the view. Hidden attributes are
    /// not assignable; imaginary objects' core attributes are immutable
    /// (§5.1).
    pub fn update_attr(&self, oid: Oid, attr: Symbol, value: Value) -> Result<()> {
        if let Some(im) = self.imaginary.read().get(&oid) {
            let class = self.schema.read().class(im.class).name;
            return Err(ViewError::CoreAttrUpdate { class, attr });
        }
        let view_class = self.view_class_of(oid).map_err(ViewError::from)?;
        let schema = self.schema.read();
        match schema.visible_attrs(view_class).get(&attr) {
            Some((def_in, def)) => {
                if self.is_hidden_attr(*def_in, attr, &schema) {
                    return Err(ViewError::HiddenAttr {
                        class: schema.class(view_class).name,
                        attr,
                    });
                }
                // A computed definition shadows any stored base attribute
                // of the same name; forwarding the write would store a
                // base value the view never reads back.
                if !def.is_stored() {
                    return Err(ViewError::ComputedAttrUpdate {
                        class: schema.class(view_class).name,
                        attr,
                    });
                }
            }
            None => {
                // The attribute has no visible definition here — but the
                // write still reaches the base store below, so a hide must
                // still block it. Without a definition site to test
                // precisely, fall back to the subclass-closed name check
                // (§3: a hide in C covers C and all its subclasses): any
                // hide whose root is related to `view_class` suppresses
                // the name along this object's resolution chain.
                if self.body_depth() == 0
                    && self.hidden_attrs.iter().any(|&(c, a)| {
                        a == attr
                            && (schema.is_subclass(view_class, c)
                                || schema.is_subclass(c, view_class))
                    })
                {
                    return Err(ViewError::HiddenAttr {
                        class: schema.class(view_class).name,
                        attr,
                    });
                }
            }
        }
        drop(schema);
        for handle in &self.sources {
            let mut db = handle.write();
            if db.store.get(oid).is_some() {
                return Ok(db.set_attr(oid, attr, value)?);
            }
        }
        Err(OodbError::UnknownObject(oid).into())
    }

    /// Deletes a base object through the view. Identity-table entries whose
    /// core tuple references the deleted oid are swept immediately: under
    /// [`IdentityMode::Table`] a stale entry would otherwise resurrect its
    /// imaginary oid from a dead tuple if an equal tuple ever reappeared.
    pub fn delete(&self, oid: Oid) -> Result<()> {
        if let Some(im) = self.imaginary.read().get(&oid) {
            let class = self.schema.read().class(im.class).name;
            return Err(ViewError::ImaginaryUpdate(class));
        }
        for handle in &self.sources {
            let mut db = handle.write();
            if db.store.get(oid).is_some() {
                db.delete_object(oid)?;
                drop(db);
                self.purge_dead_identity(oid);
                return Ok(());
            }
        }
        Err(OodbError::UnknownObject(oid).into())
    }

    /// Drops every identity-table entry whose core tuple references `dead`
    /// (with its cached imaginary object). Lock order identity → imaginary,
    /// matching [`Self::gc_identity`] and [`Self::imaginary_oid`].
    fn purge_dead_identity(&self, dead: Oid) {
        let mut purged: Vec<(ClassId, Tuple, Oid)> = Vec::new();
        let mut identity = self.identity.write();
        for (&class, table) in identity.iter_mut() {
            table.retain(|tuple, &mut im_oid| {
                let mut refs = Vec::new();
                for (_, v) in tuple.iter() {
                    v.collect_oids(&mut refs);
                }
                if refs.contains(&dead) {
                    purged.push((class, tuple.clone(), im_oid));
                    false
                } else {
                    true
                }
            });
        }
        let mut imaginary = self.imaginary.write();
        for (_, _, o) in &purged {
            imaginary.remove(o);
        }
        drop(imaginary);
        drop(identity);
        if !purged.is_empty() {
            ov_oodb::metric_counter!("views.identity_purged").add(purged.len() as u64);
            if !self.durable.is_empty() {
                let schema = self.schema.read();
                for (class, tuple, _) in &purged {
                    let class_name = schema.class(*class).name;
                    for d in &self.durable {
                        d.log_identity_drop(self.name, class_name, tuple);
                    }
                }
            }
        }
    }

    /// Re-seats identity assignments persisted by an earlier incarnation
    /// of this view (recovered by the sources' durability cores): each
    /// durable `(class name, core tuple) → oid` entry whose class is still
    /// an imaginary class of this view is installed in the in-memory
    /// tables, and the imaginary-oid allocator starts above every
    /// recovered oid. Called once at the end of bind.
    fn adopt_durable_identity(&self) {
        if self.durable.is_empty() {
            return;
        }
        let schema = self.schema.read();
        let kinds = self.kinds.read();
        let mut identity = self.identity.write();
        let mut imaginary = self.imaginary.write();
        let mut floor = IMAGINARY_OID_BASE;
        let mut adopted = 0u64;
        for core in &self.durable {
            floor = floor.max(core.next_imaginary());
            for (class_name, tuple, oid) in core.identity_for_view(self.name) {
                let Some(cid) = schema.class_by_name(class_name) else {
                    continue; // class no longer in the view definition
                };
                if !matches!(kinds.get(&cid), Some(ClassKind::Imaginary { .. })) {
                    continue;
                }
                let table = identity.entry(cid).or_default();
                if table.contains_key(&tuple) {
                    continue;
                }
                table.insert(tuple.clone(), oid);
                imaginary.insert(
                    oid,
                    ImaginaryObject {
                        class: cid,
                        core: tuple,
                    },
                );
                floor = floor.max(oid.0 + 1);
                adopted += 1;
            }
        }
        self.next_imaginary.fetch_max(floor, Ordering::Relaxed);
        if adopted > 0 {
            ov_oodb::metric_counter!("views.identity_adopted").add(adopted);
        }
    }

    /// Instantiates a parameterized class (`Resident("France")`), creating
    /// and caching the instance class on first use (§4.1: "classes
    /// automatically disappear or are created").
    pub fn instantiate(&self, name: Symbol, args: &[Value]) -> Result<ClassId> {
        let template = self
            .templates
            .get(&name)
            .ok_or(OodbError::UnknownClass(name))?;
        if template.params.len() != args.len() {
            return Err(ViewError::ParamArity {
                class: name,
                expected: template.params.len(),
                got: args.len(),
            });
        }
        let key = (name, args.to_vec());
        // Hold the write lock across the check *and* the definition:
        // two threads instantiating `Adult(18)` concurrently must not both
        // define the synthesized class. Lock order is instances → schema;
        // nothing acquires `instances` while holding the schema lock.
        let mut instances = self.instances.write();
        if let Some(&c) = instances.get(&key) {
            return Ok(c);
        }
        // Substitute parameters by value and define as a regular virtual
        // class under a synthesized name.
        let params = template.params.clone();
        let substituted: Vec<IncludeSpec> = template
            .includes
            .iter()
            .map(|inc| substitute_include(inc, &params, args))
            .collect();
        let mut instance_name = format!("{name}(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                instance_name.push_str(", ");
            }
            instance_name.push_str(&a.to_string());
        }
        instance_name.push(')');
        let class = self.define_virtual_class(Symbol::new(&instance_name), &substituted)?;
        instances.insert(key, class);
        // The schema grew: `Param(x)` names now resolve where they didn't,
        // so any warm compiled-scan resolution caches must be refreshed.
        self.res_gen.fetch_add(1, Ordering::Release);
        Ok(class)
    }
}

/// Searches the conjuncts of `filter` for `var.Attr = literal` (either
/// orientation); returns the attribute and literal.
fn find_eq_conjunct(filter: &Expr, var: Symbol) -> Option<(Symbol, Value)> {
    let mut stack = vec![filter];
    while let Some(e) = stack.pop() {
        if let Expr::Binary { op, lhs, rhs } = e {
            match op {
                ov_oodb::BinOp::And => {
                    stack.push(lhs);
                    stack.push(rhs);
                }
                ov_oodb::BinOp::Eq => {
                    for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                        if let (Expr::Attr { recv, name, args }, Expr::Lit(v)) = (&**a, &**b) {
                            if args.is_empty() && **recv == Expr::Name(var) {
                                return Some((*name, v.clone()));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Rewrites parameter references to literal values inside an include spec.
fn substitute_include(inc: &IncludeSpec, params: &[Symbol], args: &[Value]) -> IncludeSpec {
    let subst = |e: &Expr| -> Option<Expr> {
        if let Expr::Name(n) = e {
            if let Some(i) = params.iter().position(|p| p == n) {
                return Some(Expr::Lit(args[i].clone()));
            }
        }
        None
    };
    match inc {
        IncludeSpec::Query(q) => IncludeSpec::Query(ov_query::map_select(q, &mut { subst })),
        IncludeSpec::Imaginary(q) => {
            IncludeSpec::Imaginary(ov_query::map_select(q, &mut { subst }))
        }
        other => other.clone(),
    }
}

/// Rewrites class references in a type through an import map; unimported
/// classes degrade to `any`.
fn remap_type(ty: &Type, map: &HashMap<ClassId, ClassId>) -> Type {
    match ty {
        Type::Class(c) => match map.get(c) {
            Some(v) => Type::Class(*v),
            None => Type::Any,
        },
        Type::Tuple(fields) => Type::Tuple(
            fields
                .iter()
                .map(|(n, t)| (*n, remap_type(t, map)))
                .collect(),
        ),
        Type::Set(t) => Type::set(remap_type(t, map)),
        Type::List(t) => Type::list(remap_type(t, map)),
        other => other.clone(),
    }
}

// ----------------------------------------------------------------------
// DataSource: the view *is* a database to the query layer.
// ----------------------------------------------------------------------

impl DataSource for View {
    fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.lookup_class(name)
    }

    fn class_name(&self, c: ClassId) -> Symbol {
        self.schema.read().class(c).name
    }

    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.schema.read().is_subclass(sub, sup)
    }

    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        ClassGraph::ancestors(&*self.schema.read(), c)
    }

    fn class_of(&self, oid: Oid) -> ov_query::Result<ClassId> {
        let c = self.view_class_of(oid)?;
        if self.is_hidden_class(c) {
            // Present the object under its nearest visible ancestor.
            let schema = self.schema.read();
            let mut visible: Vec<ClassId> = schema
                .ancestors(c)
                .into_iter()
                .filter(|&a| !self.is_hidden_class(a))
                .collect();
            let all = visible.clone();
            visible.retain(|&a| !all.iter().any(|&b| b != a && schema.is_subclass(b, a)));
            visible
                .first()
                .copied()
                .ok_or_else(|| ViewError::NotVisible(oid).into())
        } else {
            Ok(c)
        }
    }

    fn extent(&self, class: ClassId) -> ov_query::Result<Vec<Oid>> {
        let kind = self.kinds.read().get(&class).cloned();
        match kind {
            Some(ClassKind::Virtual) | Some(ClassKind::Imaginary { .. }) => {
                Ok(self.population(class)?.iter().copied().collect())
            }
            Some(ClassKind::Imported { .. }) | None => {
                // Union of the source extents of all imported descendants.
                // Virtual descendants are provably redundant here: their
                // populations are drawn from classes already below `class`.
                let descendants: Vec<ClassId> = {
                    let schema = self.schema.read();
                    let mut d = vec![class];
                    d.extend(schema.strict_descendants(class));
                    d
                };
                let mut out = BTreeSet::new();
                let kinds = self.kinds.read();
                for d in descendants {
                    if let Some(ClassKind::Imported { source, orig }) = kinds.get(&d) {
                        let db = self.sources[*source].read();
                        out.extend(db.store.extent(*orig));
                    }
                }
                Ok(out.into_iter().collect())
            }
        }
    }

    fn is_member(&self, oid: Oid, class: ClassId) -> ov_query::Result<bool> {
        let vc = match self.view_class_of(oid) {
            Ok(c) => c,
            Err(_) => return Ok(false),
        };
        if self.schema.read().is_subclass(vc, class) {
            return Ok(true);
        }
        // Membership through an overlapping virtual class below `class`.
        let populating = self.with_eval(|s| s.populating.clone());
        let candidates: Vec<ClassId> = {
            let virt = self.virt.read();
            let schema = self.schema.read();
            virt.keys()
                .copied()
                .filter(|&v| !populating.contains(&v) && schema.is_subclass(v, class))
                .collect()
        };
        for v in candidates {
            if self.population(v)?.contains(&oid) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn resolve(&self, oid: Oid, name: Symbol) -> ov_query::Result<ResolvedAttr> {
        // Hide-resolution happens here: hidden definitions are filtered
        // from the candidate set below, so the span covers the full
        // membership + upward-resolution walk.
        let _span = ov_oodb::span!("view.resolve", attr = name);
        let roots = self.membership_roots(oid, Some(name))?;
        let schema = self.schema.read();
        // Candidate defining classes across all membership roots.
        let mut defining: Vec<ClassId> = Vec::new();
        for &root in &roots {
            for anc in ClassGraph::ancestors(&*schema, root) {
                if let Some(def) = schema.class(anc).own_attr(name) {
                    if !def.is_abstract() && !self.is_hidden_attr(anc, name, &schema) {
                        defining.push(anc);
                    }
                }
            }
        }
        defining.sort();
        defining.dedup();
        if defining.is_empty() {
            return Err(QueryError::from(OodbError::UnknownAttr {
                class: schema.class(roots[0]).name,
                attr: name,
            }));
        }
        let minimal: Vec<ClassId> = defining
            .iter()
            .copied()
            .filter(|&c| !defining.iter().any(|&d| d != c && schema.is_subclass(d, c)))
            .collect();
        let chosen = match minimal.as_slice() {
            [one] => *one,
            several => match &self.policy {
                ConflictPolicy::Error => {
                    return Err(QueryError::from(OodbError::Schizophrenia {
                        class: schema.class(roots[0]).name,
                        attr: name,
                        defined_in: several.iter().map(|&c| schema.class(c).name).collect(),
                    }))
                }
                ConflictPolicy::CreationOrder => several[0],
                ConflictPolicy::Priority(order) => order
                    .iter()
                    .find_map(|n| {
                        let id = schema.class_by_name(*n)?;
                        several.contains(&id).then_some(id)
                    })
                    .unwrap_or(several[0]),
            },
        };
        let def = schema.class(chosen).own_attr(name).expect("defines it");
        Ok(match &def.body {
            AttrBody::Stored => ResolvedAttr::Stored,
            AttrBody::Computed(body) => ResolvedAttr::Computed {
                params: def.sig.params.iter().map(|(p, _)| *p).collect(),
                body: body.clone(),
            },
            AttrBody::Abstract => unreachable!("abstract defs filtered above"),
        })
    }

    fn stored_field(&self, oid: Oid, name: Symbol) -> ov_query::Result<Value> {
        if let Some(im) = self.imaginary.read().get(&oid) {
            return Ok(im.core.get(name).cloned().unwrap_or(Value::Null));
        }
        for handle in &self.sources {
            let db = handle.read();
            if let Some(obj) = db.store.get(oid) {
                return Ok(obj.value.get(name).cloned().unwrap_or(Value::Null));
            }
        }
        Err(QueryError::from(OodbError::UnknownObject(oid)))
    }

    fn resolution_class(&self, oid: Oid) -> Option<ClassId> {
        // The *raw* presented class, not `class_of`: hidden classes map to
        // visible ancestors only at body depth 0, so two oids of one hidden
        // class must not share a cache key with oids of the ancestor.
        self.view_class_of(oid).ok()
    }

    fn resolution_class_and_field(&self, oid: Oid, name: Symbol) -> Option<(ClassId, Value)> {
        // Fused `resolution_class` + `stored_field`: one imaginary-table
        // probe and one source-store probe instead of two of each, which
        // matters at a lock acquisition and a hash lookup per scanned row.
        if let Some(im) = self.imaginary.read().get(&oid) {
            return Some((im.class, im.core.get(name).cloned().unwrap_or(Value::Null)));
        }
        for (idx, handle) in self.sources.iter().enumerate() {
            let db = handle.read();
            if let Some(obj) = db.store.get(oid) {
                let class = self.import_maps[idx].get(&obj.class).copied()?;
                return Some((class, obj.value.get(name).cloned().unwrap_or(Value::Null)));
            }
        }
        None
    }

    fn resolution_generation(&self) -> u64 {
        self.res_gen.load(Ordering::Acquire)
    }

    fn prefetch_attr_columns(
        &self,
        oids: &[Option<Oid>],
        names: &[Symbol],
    ) -> Option<ov_query::PrefetchedColumns> {
        // Batched `resolution_class_and_field`: the imaginary table and
        // every source store are locked *once* for the whole batch instead
        // of once per row per attribute. Pure snapshot reads — no budget
        // charges, no fault sites, no membership checks — matching the
        // trait contract.
        let imaginary = self.imaginary.read();
        let stores: Vec<_> = self.sources.iter().map(|h| h.read()).collect();
        let mut cols = vec![vec![None; oids.len()]; names.len()];
        for (row, oid) in oids.iter().enumerate() {
            let Some(oid) = *oid else { continue };
            if let Some(im) = imaginary.get(&oid) {
                for (c, name) in names.iter().enumerate() {
                    cols[c][row] =
                        Some((im.class, im.core.get(*name).cloned().unwrap_or(Value::Null)));
                }
                continue;
            }
            for (idx, db) in stores.iter().enumerate() {
                if let Some(obj) = db.store.get(oid) {
                    if let Some(&class) = self.import_maps[idx].get(&obj.class) {
                        for (c, name) in names.iter().enumerate() {
                            cols[c][row] =
                                Some((class, obj.value.get(*name).cloned().unwrap_or(Value::Null)));
                        }
                    }
                    break;
                }
            }
        }
        Some(cols)
    }

    fn resolution_is_class_pure(&self, class: ClassId, name: Symbol) -> bool {
        // Parameterized templates can mint new virtual classes mid-scan
        // (through `apply` in a filter); give up on caching entirely.
        if !self.templates.is_empty() {
            return false;
        }
        // Mirrors `membership_roots`: resolving `name` is a pure function
        // of the class only when no virtual class could contribute a
        // *relevant* definition — otherwise membership in that class's
        // population makes resolution per-object, and the per-class cache
        // would conflate members with non-members.
        let populating = self.with_eval(|s| s.populating.clone());
        let schema = self.schema.read();
        let roots: Vec<ClassId> = if self.is_hidden_class(class) && self.body_depth() == 0 {
            let mut visible: Vec<ClassId> = schema
                .ancestors(class)
                .into_iter()
                .filter(|&a| !self.is_hidden_class(a))
                .collect();
            let all = visible.clone();
            visible.retain(|&a| !all.iter().any(|&b| b != a && schema.is_subclass(b, a)));
            if visible.is_empty() {
                // `resolve` errors for every such object; don't cache that.
                return false;
            }
            visible
        } else {
            vec![class]
        };
        let base_defs: HashSet<ClassId> = roots
            .iter()
            .flat_map(|&r| ClassGraph::ancestors(&*schema, r))
            .collect();
        let virt = self.virt.read();
        !virt.keys().copied().any(|v| {
            !populating.contains(&v)
                && !roots.contains(&v)
                && ClassGraph::ancestors(&*schema, v).iter().any(|&a| {
                    !base_defs.contains(&a)
                        && schema
                            .class(a)
                            .own_attr(name)
                            .is_some_and(|d| !d.is_abstract())
                })
        })
    }

    fn named_object(&self, name: Symbol) -> Option<Oid> {
        self.sources.iter().find_map(|h| h.read().named(name).ok())
    }

    fn object_exists(&self, oid: Oid) -> bool {
        self.imaginary.read().contains_key(&oid)
            || self
                .sources
                .iter()
                .any(|h| h.read().store.get(oid).is_some())
    }

    fn attr_sig(&self, c: ClassId, name: Symbol) -> Option<AttrSig> {
        let schema = self.schema.read();
        let (def_in, def) = *schema.visible_attrs(c).get(&name)?;
        if self.is_hidden_attr(def_in, name, &schema) {
            return None;
        }
        Some(def.sig.clone())
    }

    fn class_type(&self, c: ClassId) -> Type {
        let schema = self.schema.read();
        let fields = schema
            .visible_attrs(c)
            .into_iter()
            .filter(|(n, (def_in, def))| {
                def.sig.params.is_empty() && !self.is_hidden_attr(*def_in, *n, &schema)
            })
            .map(|(n, (_, def))| (n, def.sig.ty.clone()))
            .collect();
        Type::Tuple(fields)
    }

    fn apply(&self, name: Symbol, args: &[Value]) -> ov_query::Result<Value> {
        let class = self.instantiate(name, args)?;
        let oids = DataSource::extent(self, class)?;
        Ok(Value::Set(oids.into_iter().map(Value::Oid).collect()))
    }

    fn enter_body(&self) {
        self.with_eval(|s| s.body_depth += 1);
    }

    fn exit_body(&self) {
        self.with_eval(|s| s.body_depth = s.body_depth.saturating_sub(1));
    }

    fn apply_type(&self, name: Symbol, args: &[Type]) -> ov_query::Result<Type> {
        let template = self
            .templates
            .get(&name)
            .ok_or_else(|| QueryError::ty(format!("`{name}` is not a parameterized class")))?;
        if template.params.len() != args.len() {
            return Err(ViewError::ParamArity {
                class: name,
                expected: template.params.len(),
                got: args.len(),
            }
            .into());
        }
        // The instance class depends on argument *values*, unknown
        // statically; members are objects of unknowable class.
        Ok(Type::set(Type::Any))
    }
}
