//! Typed DDL over a session's catalog: databases, classes, and views.
//!
//! [`Session::system_mut`] handed out the raw [`ov_oodb::System`] and let
//! callers mutate base schemas behind the views' backs. This module is the
//! replacement: every definition, redefinition, and drop goes through a
//! [`CatalogTxn`], which consults the session's
//! [dependency graph](crate::graph::DependencyGraph) and returns a typed
//! [`DdlOutcome`]:
//!
//! * **acyclic** — a view definition that would close a dependency cycle
//!   is rejected at bind time ([`crate::ViewError::CyclicViewDependency`]);
//! * **RESTRICT** — dropping a view another view reads returns
//!   [`DdlOutcome::Rejected`] with the dependents, and nothing changes;
//! * **atomic revalidation** — redefining a view (or a base schema)
//!   rebinds every transitive dependent in topological order, all-or-
//!   nothing: a dependent that fails rolls the whole change back
//!   ([`crate::ViewError::RevalidationFailed`]).
//!
//! ```
//! use ov_views::{DdlOutcome, Session, ViewDef};
//!
//! let mut session = Session::new();
//! session.catalog().create_database("Staff").unwrap();
//! session
//!     .catalog()
//!     .define_class("Staff", "class Person type [Name: string, Age: integer];")
//!     .unwrap();
//! let def = ViewDef::from_script(
//!     "create view Grown_Ups; \
//!      import all classes from database Staff; \
//!      class Adult includes (select P from Person where P.Age >= 21);",
//! )
//! .unwrap();
//! assert!(matches!(
//!     session.catalog().define_view(def).unwrap(),
//!     DdlOutcome::Defined(_)
//! ));
//! ```
//!
//! [`Session::system_mut`]: crate::Session::system_mut

use ov_oodb::Symbol;
use ov_query::{parse_program, Stmt};

use crate::def::ViewDef;
use crate::error::{Result, ViewError};
use crate::graph::{DepEdge, DepTarget};
use crate::session::Session;

/// What a DDL operation did — the typed result of every [`CatalogTxn`]
/// mutation, so callers branch on outcomes instead of parsing notices.
#[derive(Clone, PartialEq, Debug)]
pub enum DdlOutcome {
    /// The database, class, or view was created.
    Defined(Symbol),
    /// The view was dropped (it had no dependents).
    Dropped(Symbol),
    /// The drop was refused: these views still read the target
    /// (RESTRICT semantics). Nothing was changed.
    Rejected {
        /// What the caller tried to drop.
        name: Symbol,
        /// The views that read it, sorted.
        dependents: Vec<Symbol>,
    },
    /// The (re)definition committed, and this many transitive dependents
    /// were atomically rebound against the new state.
    Revalidated {
        /// The database or view that changed.
        changed: Symbol,
        /// How many dependent views were rebound.
        dependents: usize,
    },
}

/// A handle for typed DDL against one [`Session`]'s catalog.
///
/// Obtained from [`Session::catalog`]; each operation is self-contained
/// (validate → apply → revalidate dependents) and leaves the session
/// unchanged on error.
pub struct CatalogTxn<'s> {
    session: &'s mut Session,
}

impl<'s> CatalogTxn<'s> {
    pub(crate) fn new(session: &'s mut Session) -> CatalogTxn<'s> {
        CatalogTxn { session }
    }

    /// Creates database `name` (idempotent: an existing database of that
    /// name is left untouched).
    pub fn create_database(&mut self, name: impl Into<Symbol>) -> Result<DdlOutcome> {
        let name = name.into();
        if self.session.system.database(name).is_err() {
            self.session.system.create_database(name)?;
        }
        Ok(DdlOutcome::Defined(name))
    }

    /// Runs schema DDL (`class …;` / `attribute …;` declarations only)
    /// against database `db`, then revalidates the database's transitive
    /// dependents in topological order. A dependent that no longer binds
    /// fails the whole operation with
    /// [`ViewError::RevalidationFailed`] — but note the base schema change
    /// itself is *not* undone (base databases have no schema rollback);
    /// the views keep their previous bound state.
    pub fn define_class(&mut self, db: impl Into<Symbol>, script: &str) -> Result<DdlOutcome> {
        let db = db.into();
        let stmts = parse_program(script).map_err(ViewError::from)?;
        for stmt in &stmts {
            if !matches!(stmt, Stmt::ClassDecl { .. } | Stmt::AttributeDecl { .. }) {
                return Err(ViewError::Definition(
                    "catalog define_class accepts only `class` and `attribute` declarations".into(),
                ));
            }
        }
        self.session.apply_ddl(db, stmts)?;
        let n = self
            .session
            .rebind_dependents(DepTarget::Database(db), db)?;
        Ok(DdlOutcome::Revalidated {
            changed: db,
            dependents: n,
        })
    }

    /// Defines a new view from `def`, binding it against the session's
    /// databases and existing views (so `import all classes from V`
    /// stacks). Rejects a duplicate name and any definition that would
    /// close a dependency cycle.
    pub fn define_view(&mut self, def: ViewDef) -> Result<DdlOutcome> {
        let name = def.name;
        if self.session.views.contains_key(&name) {
            return Err(ViewError::Definition(format!(
                "view `{name}` already exists (use `redefine_view` to replace it)"
            )));
        }
        let view = self.session.bind_def(&def)?;
        self.session.install_view(def, view);
        Ok(DdlOutcome::Defined(name))
    }

    /// Replaces the definition of an existing view, atomically
    /// revalidating every transitive dependent: either the new definition
    /// and all rebound dependents commit together, or nothing changes and
    /// the error says which dependent refused
    /// ([`ViewError::RevalidationFailed`]).
    pub fn redefine_view(&mut self, def: ViewDef) -> Result<DdlOutcome> {
        let name = def.name;
        if !self.session.views.contains_key(&name) {
            return Err(ViewError::Definition(format!(
                "view `{name}` does not exist (use `define_view` to create it)"
            )));
        }
        let n = self.session.replace_view_def(def)?;
        Ok(DdlOutcome::Revalidated {
            changed: name,
            dependents: n,
        })
    }

    /// Drops view `name` — RESTRICT: if other views read it, returns
    /// [`DdlOutcome::Rejected`] listing them and changes nothing.
    pub fn drop_view(&mut self, name: impl Into<Symbol>) -> Result<DdlOutcome> {
        let name = name.into();
        if !self.session.views.contains_key(&name) {
            return Err(ViewError::Definition(format!(
                "view `{name}` does not exist"
            )));
        }
        let dependents = self.session.graph.direct_dependents(DepTarget::View(name));
        if !dependents.is_empty() {
            return Ok(DdlOutcome::Rejected { name, dependents });
        }
        self.session.remove_view(name);
        Ok(DdlOutcome::Dropped(name))
    }

    /// The dependency edges of view `name`, if it exists.
    pub fn dependencies(&self, name: impl Into<Symbol>) -> Option<Vec<DepEdge>> {
        self.session.graph.deps_of(name.into()).map(<[_]>::to_vec)
    }

    /// Every view that (transitively) reads `target`, in topological
    /// order.
    pub fn dependents(&self, target: DepTarget) -> Vec<Symbol> {
        self.session.graph.transitive_dependents(target)
    }
}
