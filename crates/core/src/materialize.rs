//! Materializing a view into a database.
//!
//! The paper closes by noting that "important issues such as materialized
//! views … acquire a new dimension in the context of objects" (§6). This
//! module provides the snapshot half of that story: [`View::materialize`]
//! exports the view's visible contents as a fresh, self-contained
//! [`Database`] — every visible class becomes a real class, every visible
//! object (including imaginary ones) becomes a real object, and every
//! zero-parameter attribute is evaluated and stored.
//!
//! Materialization is also how views stack: register the materialized
//! database in a [`ov_oodb::System`] and define the next view over it
//! ("we can build views on top of views on top of views", §3).

use std::collections::{BTreeSet, HashMap};

use ov_oodb::{AttrDef, ClassId, Database, Oid, Symbol, Type, Value};
use ov_query::DataSource;

use crate::error::Result;
use crate::view::View;

impl View {
    /// Snapshots the view into a database named `name`.
    ///
    /// * Visible classes become real classes with the view's inferred
    ///   hierarchy (hidden classes and attributes are gone for good).
    /// * All zero-parameter attributes — stored, computed, upward-inherited
    ///   — are **evaluated per object and stored**; parameterized
    ///   attributes (methods) are dropped, since their bodies may reference
    ///   view machinery.
    /// * Imaginary objects become real objects; object references are
    ///   rewritten to the new oids. References to objects outside the view
    ///   become `null`.
    pub fn materialize(&self, name: Symbol) -> Result<Database> {
        let mut db = Database::new(name);
        // 1. Classes, in id order (parents precede children by
        //    construction), skipping hidden ones. Attribute *types* are
        //    taken from the view's class type; everything becomes stored.
        let class_names: Vec<Symbol> = self.class_names();
        let mut class_map: HashMap<ClassId, ClassId> = HashMap::new();
        // Gather (view id, name) sorted by view id to respect topology.
        let mut classes: Vec<(ClassId, Symbol)> = class_names
            .iter()
            .filter_map(|&n| DataSource::class_by_name(self, n).map(|c| (c, n)))
            .collect();
        classes.sort();
        for (view_id, cname) in &classes {
            let parents: Vec<ClassId> = DataSource::ancestors(self, *view_id)
                .into_iter()
                .filter(|&a| a != *view_id)
                .filter_map(|a| class_map.get(&a).copied())
                .collect();
            // Reduce to direct-most parents: keep minimal ones.
            let direct: Vec<ClassId> = parents
                .iter()
                .copied()
                .filter(|&p| {
                    !parents
                        .iter()
                        .any(|&q| q != p && ov_oodb::ClassGraph::is_subclass(&db.schema, q, p))
                })
                .collect();
            // Own attributes: fields of the class type not provided by any
            // materialized parent.
            let Type::Tuple(fields) = DataSource::class_type(self, *view_id) else {
                unreachable!("class types are tuples")
            };
            let mut own: Vec<AttrDef> = Vec::new();
            for (aname, aty) in fields {
                let inherited = direct
                    .iter()
                    .any(|&p| db.schema.visible_attrs(p).contains_key(&aname));
                if !inherited {
                    own.push(AttrDef::stored(aname, remap_class_types(&aty, &class_map)));
                }
            }
            let new_id = db.create_class(*cname, &direct, own)?;
            class_map.insert(*view_id, new_id);
        }
        // 2. Objects: every object visible through any visible class, created
        //    real in (the image of) its presenting class.
        let mut all_oids: BTreeSet<Oid> = BTreeSet::new();
        for (view_id, _) in &classes {
            all_oids.extend(DataSource::extent(self, *view_id).map_err(crate::ViewError::from)?);
        }
        let mut oid_map: HashMap<Oid, Oid> = HashMap::new();
        let mut presenting: Vec<(Oid, ClassId)> = Vec::new();
        for &oid in &all_oids {
            // Unique-root rule meets virtual membership: the snapshot makes
            // each object real in its *most specific* visible class — the
            // unique minimal element of its membership set when one exists
            // (an Adult becomes real in Adult), falling back to the
            // presenting class when memberships are incomparable
            // (an object in both Rich and Beautiful stays real in Person;
            // overlaps cannot survive materialization under unique root).
            let presented = DataSource::class_of(self, oid).map_err(crate::ViewError::from)?;
            let memberships = self
                .membership_roots(oid, None)
                .map_err(crate::ViewError::from)?;
            let minimal: Vec<ClassId> = memberships
                .iter()
                .copied()
                .filter(|&c| {
                    !memberships
                        .iter()
                        .any(|&d| d != c && DataSource::is_subclass(self, d, c))
                })
                .collect();
            let root = match minimal.as_slice() {
                [one] => *one,
                _ => presented,
            };
            let Some(&target) = class_map.get(&root).or_else(|| class_map.get(&presented)) else {
                continue; // presents under a hidden class with no visible image
            };
            let new = db.create_object(target, Value::empty_tuple())?;
            oid_map.insert(oid, new);
            presenting.push((oid, target));
        }
        // 3. Attribute values: evaluate through the view, rewrite
        //    references, store.
        for (old_oid, target) in presenting {
            let new_oid = oid_map[&old_oid];
            let fields: Vec<Symbol> = db.schema.visible_attrs(target).keys().copied().collect();
            for field in fields {
                let v = match ov_query::eval_attr(self, old_oid, field, &[]) {
                    Ok(v) => v,
                    // A hidden or conflicting attribute that slipped through
                    // resolution is simply left null in the snapshot.
                    Err(_) => continue,
                };
                let rewritten = rewrite_refs(&v, &oid_map);
                db.store.set_field(new_oid, field, rewritten)?;
            }
        }
        Ok(db)
    }
}

/// Rewrites oid references through the materialization map; unknown
/// references become `null`.
fn rewrite_refs(v: &Value, map: &HashMap<Oid, Oid>) -> Value {
    match v {
        Value::Oid(o) => match map.get(o) {
            Some(n) => Value::Oid(*n),
            None => Value::Null,
        },
        Value::Tuple(t) => Value::Tuple(ov_oodb::Tuple(
            t.iter().map(|(n, fv)| (n, rewrite_refs(fv, map))).collect(),
        )),
        Value::Set(s) => Value::Set(s.iter().map(|e| rewrite_refs(e, map)).collect()),
        Value::List(l) => Value::List(l.iter().map(|e| rewrite_refs(e, map)).collect()),
        other => other.clone(),
    }
}

/// Class types cannot cross the materialization boundary structurally (ids
/// differ); map them, degrading unknown classes to `any`.
fn remap_class_types(ty: &Type, map: &HashMap<ClassId, ClassId>) -> Type {
    match ty {
        Type::Class(c) => map.get(c).map(|&n| Type::Class(n)).unwrap_or(Type::Any),
        Type::Tuple(fields) => Type::Tuple(
            fields
                .iter()
                .map(|(n, t)| (*n, remap_class_types(t, map)))
                .collect(),
        ),
        Type::Set(t) => Type::set(remap_class_types(t, map)),
        Type::List(t) => Type::list(remap_class_types(t, map)),
        other => other.clone(),
    }
}
