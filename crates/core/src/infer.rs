//! Hierarchy inference and upward inheritance (§4.2–§4.3).
//!
//! Given the *contributors* of a virtual class (the classes it wholly
//! includes plus the source classes of its population queries), this module
//! computes:
//!
//! * its inferred **superclasses** — rule R1: "if D is a superclass of
//!   C₁…Cₙ, then D is also a superclass of the virtual class C";
//! * its inferred **subclasses** — rule R2: "each Cᵢ is a subclass of C for
//!   1 ≤ i ≤ k" (the wholly-included classes);
//! * its **upward-inherited attributes** — §4.3: an attribute `A` common to
//!   all contributors whose types have a least upper bound τ becomes an
//!   attribute `A : τ` of the virtual class.
//!
//! It also implements the structural test behind **behavioral
//! generalization** (`like B`): "group all classes whose type is at least
//! as specific as the type of B".

use std::collections::BTreeMap;

use ov_oodb::{ClassGraph, ClassId, Schema, Symbol, Type};

/// The inferred position of a new virtual class.
#[derive(Debug, PartialEq)]
pub struct InferredPosition {
    /// Direct superclasses for the new class (R1, minimized).
    pub parents: Vec<ClassId>,
    /// Classes that must gain the new class as a direct superclass (R2).
    pub new_subclasses: Vec<ClassId>,
}

/// Applies rules R1/R2.
///
/// Each element of `units` is the *guaranteed superclass set* of one
/// population contributor — the classes every object contributed by that
/// include is certain to belong to:
///
/// * a wholly-included class `Cᵢ` contributes `ancestors(Cᵢ)`;
/// * a `like` match `M` contributes `ancestors(M)`;
/// * a population query contributes the **union** of the ancestor sets of
///   its proved constraints — the projected variable's class *and* every
///   membership conjunct (`P in Beautiful`), since each member satisfies
///   all of them at once. This is how the paper's `Rich&Beautiful` gets
///   both `Rich` and `Beautiful` as superclasses (§4.2).
///
/// R1 then says the new class's superclasses are the classes common to all
/// units; we take the minimal ones (after removing the wholly-included
/// classes, which become *sub*classes via R2).
pub fn infer_position(
    schema: &Schema,
    units: &[Vec<ClassId>],
    wholly_included: &[ClassId],
) -> InferredPosition {
    let parents = match units.split_first() {
        None => Vec::new(),
        Some((first, rest)) => {
            let mut common: Vec<ClassId> = first
                .iter()
                .copied()
                .filter(|d| rest.iter().all(|unit| unit.contains(d)))
                .filter(|d| !wholly_included.contains(d))
                .collect();
            // Minimize: drop any class with a strictly smaller common
            // superclass.
            let all = common.clone();
            common.retain(|&d| !all.iter().any(|&e| e != d && schema.is_subclass(e, d)));
            common.sort();
            common.dedup();
            common
        }
    };
    let mut new_subclasses = wholly_included.to_vec();
    new_subclasses.sort();
    new_subclasses.dedup();
    InferredPosition {
        parents,
        new_subclasses,
    }
}

/// Convenience for building a unit from one or more constraint classes: the
/// union of their ancestor sets.
pub fn unit_of(schema: &Schema, constraints: &[ClassId]) -> Vec<ClassId> {
    let mut out: Vec<ClassId> = constraints
        .iter()
        .flat_map(|&c| schema.ancestors(c))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Upward inheritance (§4.3): the attributes the virtual class acquires
/// from its contributors. Returns `name → τ` for every zero-parameter
/// attribute visible (and not hidden — the caller pre-filters) in **all**
/// contributors whose types have a least upper bound. Attributes already
/// provided by `parents` are skipped (ordinary downward inheritance already
/// delivers them).
pub fn upward_attrs(
    schema: &Schema,
    contributors: &[ClassId],
    parents: &[ClassId],
    hidden: &dyn Fn(ClassId, Symbol) -> bool,
) -> BTreeMap<Symbol, Type> {
    let mut out = BTreeMap::new();
    let Some((&first, rest)) = contributors.split_first() else {
        return out;
    };
    'attrs: for (name, (def_in, def)) in schema.visible_attrs(first) {
        if !def.sig.params.is_empty() || hidden(def_in, name) {
            continue;
        }
        // Skip if a parent already provides it (standard inheritance).
        if parents.iter().any(|&p| {
            schema
                .visible_attrs(p)
                .get(&name)
                .is_some_and(|(d, _)| !hidden(*d, name))
        }) {
            continue;
        }
        let mut ty = def.sig.ty.clone();
        for &c in rest {
            let visible = schema.visible_attrs(c);
            let Some((d, other)) = visible.get(&name) else {
                continue 'attrs;
            };
            if !other.sig.params.is_empty() || hidden(*d, name) {
                continue 'attrs;
            }
            match ty.lub(&other.sig.ty, schema) {
                Some(t) => ty = t,
                None => continue 'attrs, // no least upper bound → undefined
            }
        }
        out.insert(name, ty);
    }
    out
}

/// Behavioral generalization (§4.1): does class `c`'s type conform to the
/// specification class `spec`'s type? True iff every zero-parameter
/// attribute of `spec` exists on `c` at a subtype, and every parameterized
/// attribute of `spec` exists on `c` with contravariant parameters and a
/// covariant result.
pub fn conforms_to(schema: &Schema, c: ClassId, spec: ClassId) -> bool {
    if c == spec {
        // B's type is trivially "at least as specific as" itself; the spec
        // class is a member (usually harmless — spec classes are empty).
        return true;
    }
    let spec_attrs = schema.visible_attrs(spec);
    let c_attrs = schema.visible_attrs(c);
    for (name, (_, spec_def)) in &spec_attrs {
        let Some((_, c_def)) = c_attrs.get(name) else {
            return false;
        };
        if !c_def.sig.ty.is_subtype(&spec_def.sig.ty, schema) {
            return false;
        }
        if c_def.sig.params.len() != spec_def.sig.params.len() {
            return false;
        }
        for ((_, spec_p), (_, c_p)) in spec_def.sig.params.iter().zip(&c_def.sig.params) {
            // Contravariant parameters: the implementation must accept at
            // least what the specification promises.
            if !spec_p.is_subtype(c_p, schema) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::{sym, AttrDef};

    fn navy() -> (Schema, ClassId, ClassId, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let ship = s
            .add_class(
                sym("Ship"),
                &[],
                vec![AttrDef::stored(sym("Tonnage"), Type::Int)],
            )
            .unwrap();
        let tanker = s
            .add_class(
                sym("Tanker"),
                &[ship],
                vec![AttrDef::stored(sym("Cargo"), Type::Str)],
            )
            .unwrap();
        let trawler = s
            .add_class(
                sym("Trawler"),
                &[ship],
                vec![AttrDef::stored(sym("Cargo"), Type::Str)],
            )
            .unwrap();
        let frigate = s
            .add_class(
                sym("Frigate"),
                &[ship],
                vec![AttrDef::stored(sym("Armament"), Type::Str)],
            )
            .unwrap();
        let cruiser = s
            .add_class(
                sym("Cruiser"),
                &[ship],
                vec![AttrDef::stored(sym("Armament"), Type::Str)],
            )
            .unwrap();
        (s, ship, tanker, trawler, frigate, cruiser)
    }

    #[test]
    fn generalization_finds_common_superclass() {
        // "By rule (1), … Ship is a superclass of … Merchant_Vessel."
        let (s, ship, tanker, trawler, ..) = navy();
        let units = vec![unit_of(&s, &[tanker]), unit_of(&s, &[trawler])];
        let pos = infer_position(&s, &units, &[tanker, trawler]);
        assert_eq!(pos.parents, vec![ship]);
        assert_eq!(pos.new_subclasses, vec![tanker, trawler]);
    }

    #[test]
    fn generalization_with_no_common_superclass_is_a_root() {
        let mut s = Schema::new();
        let a = s.add_class(sym("A"), &[], vec![]).unwrap();
        let b = s.add_class(sym("B"), &[], vec![]).unwrap();
        let units = vec![unit_of(&s, &[a]), unit_of(&s, &[b])];
        let pos = infer_position(&s, &units, &[a, b]);
        assert!(pos.parents.is_empty());
    }

    #[test]
    fn specialization_source_becomes_parent() {
        // class Adult includes (select P from Person …): Person is the
        // parent and there are no new subclasses.
        let mut s = Schema::new();
        let person = s.add_class(sym("Person"), &[], vec![]).unwrap();
        let pos = infer_position(&s, &[unit_of(&s, &[person])], &[]);
        assert_eq!(pos.parents, vec![person]);
        assert!(pos.new_subclasses.is_empty());
    }

    #[test]
    fn rich_and_beautiful_multiple_inheritance() {
        // One query with two membership constraints: every member is both
        // Rich and Beautiful, so both become superclasses (§4.2).
        let mut s = Schema::new();
        let rich = s.add_class(sym("Rich"), &[], vec![]).unwrap();
        let beautiful = s.add_class(sym("Beautiful"), &[], vec![]).unwrap();
        let pos = infer_position(&s, &[unit_of(&s, &[rich, beautiful])], &[]);
        assert_eq!(pos.parents, vec![rich, beautiful]);
    }

    #[test]
    fn mixed_generalization_and_specialization() {
        // Example 2: Government_Supported includes Senior, Student and a
        // selection from Adult. All three descend from Person.
        let mut s = Schema::new();
        let person = s.add_class(sym("Person"), &[], vec![]).unwrap();
        let adult = s.add_class(sym("Adult"), &[person], vec![]).unwrap();
        let senior = s.add_class(sym("Senior"), &[adult], vec![]).unwrap();
        let student = s.add_class(sym("Student"), &[person], vec![]).unwrap();
        let units = vec![
            unit_of(&s, &[senior]),
            unit_of(&s, &[student]),
            unit_of(&s, &[adult]),
        ];
        let pos = infer_position(&s, &units, &[senior, student]);
        assert_eq!(pos.parents, vec![person]);
        assert_eq!(pos.new_subclasses, vec![senior, student]);
    }

    #[test]
    fn upward_inheritance_of_common_attribute() {
        // "if Tanker and Trawler both have an attribute called Cargo, then
        // the class Merchant_Vessel will inherit it."
        let (s, ship, tanker, trawler, frigate, _) = navy();
        let acquired = upward_attrs(&s, &[tanker, trawler], &[ship], &|_, _| false);
        assert_eq!(acquired.get(&sym("Cargo")), Some(&Type::Str));
        // Tonnage comes from the parent Ship, so it is not re-acquired.
        assert!(!acquired.contains_key(&sym("Tonnage")));
        // Armament is not common to tanker+trawler.
        let none = upward_attrs(&s, &[tanker, frigate], &[ship], &|_, _| false);
        assert!(!none.contains_key(&sym("Cargo")));
        assert!(!none.contains_key(&sym("Armament")));
    }

    #[test]
    fn upward_inheritance_takes_the_lub() {
        let mut s = Schema::new();
        let a = s
            .add_class(sym("A"), &[], vec![AttrDef::stored(sym("X"), Type::Int)])
            .unwrap();
        let b = s
            .add_class(sym("B"), &[], vec![AttrDef::stored(sym("X"), Type::Float)])
            .unwrap();
        let acquired = upward_attrs(&s, &[a, b], &[], &|_, _| false);
        assert_eq!(acquired.get(&sym("X")), Some(&Type::Float));
    }

    #[test]
    fn hidden_attributes_do_not_upward_inherit() {
        let (s, ship, tanker, trawler, ..) = navy();
        let hidden = |_c: ClassId, a: Symbol| a == sym("Cargo");
        let acquired = upward_attrs(&s, &[tanker, trawler], &[ship], &hidden);
        assert!(!acquired.contains_key(&sym("Cargo")));
    }

    #[test]
    fn behavioral_conformance() {
        // class On_Sale_Spec has Price: float, Discount: int.
        let mut s = Schema::new();
        let spec = s
            .add_class(
                sym("On_Sale_Spec"),
                &[],
                vec![
                    AttrDef::stored(sym("Price"), Type::Float),
                    AttrDef::stored(sym("Discount"), Type::Int),
                ],
            )
            .unwrap();
        let car = s
            .add_class(
                sym("Car"),
                &[],
                vec![
                    AttrDef::stored(sym("Price"), Type::Float),
                    AttrDef::stored(sym("Discount"), Type::Int),
                    AttrDef::stored(sym("Brand"), Type::Str),
                ],
            )
            .unwrap();
        let rock = s
            .add_class(
                sym("Rock"),
                &[],
                vec![AttrDef::stored(sym("Price"), Type::Float)],
            )
            .unwrap();
        assert!(conforms_to(&s, car, spec));
        assert!(!conforms_to(&s, rock, spec), "missing Discount");
        assert!(conforms_to(&s, spec, spec), "the spec trivially conforms");
    }

    #[test]
    fn conformance_allows_subtyped_attributes() {
        // Price: int conforms to a spec asking Price: float (Int <: Float).
        let mut s = Schema::new();
        let spec = s
            .add_class(
                sym("Spec"),
                &[],
                vec![AttrDef::stored(sym("Price"), Type::Float)],
            )
            .unwrap();
        let cheap = s
            .add_class(
                sym("Cheap"),
                &[],
                vec![AttrDef::stored(sym("Price"), Type::Int)],
            )
            .unwrap();
        assert!(conforms_to(&s, cheap, spec));
    }
}
