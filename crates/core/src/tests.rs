//! Crate-level tests: every worked example of the paper, end to end.

use ov_oodb::{sym, ConflictPolicy, OodbError, System, Value};
use ov_query::{execute_script, DataSource};

use crate::error::ViewError;
use crate::view::{IdentityMode, Materialization, ViewOptions};
use crate::ViewDef;

/// People database used throughout §2/§4/§5 examples.
fn people_system() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, Sex: string,
                           City: string, Street: string, Zip_Code: string,
                           Income: integer,
                           Spouse: Person, Children: {Person}];
        class Employee inherits Person type [Salary: integer, Company: string];
        class Manager inherits Employee type [Budget: integer];
        object #1 in Person value [Name: "Maggy", Age: 66, Sex: "female",
                                   City: "London", Street: "10 Downing", Zip_Code: "SW1",
                                   Income: 90000, Spouse: #2];
        object #2 in Person value [Name: "Denis", Age: 70, Sex: "male",
                                   City: "London", Street: "10 Downing", Zip_Code: "SW1",
                                   Income: 4000, Spouse: #1, Children: {#3}];
        object #3 in Person value [Name: "Mark", Age: 12, Sex: "male",
                                   City: "London", Street: "10 Downing", Zip_Code: "SW1"];
        object #4 in Employee value [Name: "Tony", Age: 30, Sex: "male",
                                     City: "Paris", Street: "Rivoli", Zip_Code: "75001",
                                     Income: 50000, Salary: 50000, Company: "INRIA"];
        object #5 in Manager value [Name: "Boss", Age: 50, Sex: "female",
                                    City: "Paris", Street: "Rivoli", Zip_Code: "75001",
                                    Income: 120000, Salary: 120000, Company: "INRIA",
                                    Budget: 1000000];
        object #6 in Person value [Name: "Julia", Age: 80, Sex: "female",
                                   City: "Roma", Street: "Via Appia", Zip_Code: "00100",
                                   Income: 3000];
        name maggy = #1;
        name denis = #2;
        name tony = #4;
        "#,
    )
    .unwrap();
    sys
}

/// Navy database of §4 (Example 4 and the Ship variation).
fn navy_system() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Navy;
        class Ship type [Name: string, Tonnage: integer];
        class Tanker inherits Ship type [Cargo: string];
        class Trawler inherits Ship type [Cargo: string];
        class Frigate inherits Ship type [Armament: string];
        class Cruiser inherits Ship type [Armament: string];
        object #1 in Tanker value [Name: "Erika", Tonnage: 37000, Cargo: "oil"];
        object #2 in Trawler value [Name: "Nellie", Tonnage: 900, Cargo: "fish"];
        object #3 in Frigate value [Name: "Surprise", Tonnage: 1200, Armament: "cannon"];
        object #4 in Cruiser value [Name: "Aurora", Tonnage: 6700, Armament: "guns"];
        "#,
    )
    .unwrap();
    sys
}

#[test]
fn example1_merging_attributes_into_address() {
    // §2 Example 1: merge City/Street/Zip_Code into one Address attribute.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view Addresses;
        import all classes from database Staff;
        attribute Address in class Person has value
            [City: self.City, Street: self.Street, Zip_Code: self.Zip_Code];
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let v = view.query("maggy.Address").unwrap();
    assert_eq!(
        v,
        Value::tuple([
            ("City", Value::str("London")),
            ("Street", Value::str("10 Downing")),
            ("Zip_Code", Value::str("SW1")),
        ])
    );
    // "to access Maggy's city and address, we use the same notation".
    assert_eq!(view.query("maggy.City").unwrap(), Value::str("London"));
}

#[test]
fn virtual_attribute_type_is_inferred() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        attribute Address in class Person has value [City: self.City];
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let person = DataSource::class_by_name(&view, sym("Person")).unwrap();
    let sig = DataSource::attr_sig(&view, person, sym("Address")).unwrap();
    assert_eq!(sig.ty, ov_oodb::Type::tuple([("City", ov_oodb::Type::Str)]));
}

#[test]
fn stored_computed_overloading_across_classes() {
    // §2: Address stored in Employee, computed in Manager.
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database D;
        class Company type [CAddress: string];
        class Employee type [Name: string, Address: string, Firm: Company];
        class Manager inherits Employee type [];
        object #1 in Company value [CAddress: "HQ Plaza"];
        object #2 in Employee value [Name: "E", Address: "Home St", Firm: #1];
        object #3 in Manager value [Name: "M", Address: "ignored", Firm: #1];
        name e = #2;
        name m = #3;
        "#,
    )
    .unwrap();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database D;
        attribute Address in class Manager has value self.Firm.CAddress;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.query("e.Address").unwrap(), Value::str("Home St"));
    assert_eq!(view.query("m.Address").unwrap(), Value::str("HQ Plaza"));
}

#[test]
fn hide_attribute_hides_in_subclasses_too() {
    // §3: hiding Salary in Employee must also hide it in Manager, while
    // Manager's own Budget stays visible — the paper's correction to the
    // relational SELECT approach.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view No_Salaries;
        import all classes from database Staff;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let err = view.query("tony.Salary").unwrap_err();
    assert!(matches!(
        err,
        ViewError::Oodb(OodbError::UnknownAttr { .. })
    ));
    // Budget (defined in the subclass Manager) survives.
    let budgets = view.query("select M.Budget from M in Manager").unwrap();
    assert_eq!(budgets, Value::set([Value::Int(1_000_000)]));
    // Salary is hidden on managers as well.
    assert!(view.query("select M.Salary from M in Manager").is_err());
}

#[test]
fn hidden_attrs_cannot_be_assigned_through_the_view() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let tony = DataSource::named_object(&view, sym("tony")).unwrap();
    let err = view
        .update_attr(tony, sym("Salary"), Value::Int(1))
        .unwrap_err();
    assert!(matches!(err, ViewError::HiddenAttr { .. }));
    // Unhidden attributes pass through to the base database.
    view.update_attr(tony, sym("Age"), Value::Int(31)).unwrap();
    assert_eq!(
        sys.database(sym("Staff"))
            .unwrap()
            .read()
            .stored_attr(tony, sym("Age"))
            .unwrap(),
        &Value::Int(31)
    );
}

#[test]
fn hide_class_removes_name_but_objects_present_upward() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        hide class Manager;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert!(view.query("select M from M in Manager").is_err());
    // The manager object is still visible as an Employee.
    assert_eq!(
        view.query("count((select E from E in Employee))").unwrap(),
        Value::Int(2)
    );
    // And its Budget (defined only in the hidden class) resolves via the
    // object's real class chain — hiding a class hides the *name*, not the
    // object's structure. Its presented class is Employee.
    let manager_oid = {
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        let manager = db.schema.class_by_name(sym("Manager")).unwrap();
        db.deep_extent(manager)[0]
    };
    let c = DataSource::class_of(&view, manager_oid).unwrap();
    assert_eq!(DataSource::class_name(&view, c), sym("Employee"));
}

#[test]
fn import_conflict_requires_alias() {
    let mut sys = people_system();
    execute_script(&mut sys, "database Ford; class Person type [Name: string];").unwrap();
    let bad = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        import class Person from database Ford;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind();
    assert!(matches!(bad, Err(ViewError::ImportConflict { .. })));
    let good = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        import class Person from database Ford as Ford_Person;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert!(good.class_names().contains(&sym("Ford_Person")));
}

#[test]
fn partial_import_flattens_inherited_attributes() {
    // Importing only Employee must keep Person-inherited attributes usable.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import class Employee from database Staff;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Person is not visible…
    assert!(DataSource::class_by_name(&view, sym("Person")).is_none());
    // …but Employee (and its subclass Manager) are, with Name flattened in.
    assert_eq!(
        view.query("select E.Name from E in Employee").unwrap(),
        Value::set([Value::str("Tony"), Value::str("Boss")])
    );
    assert!(DataSource::class_by_name(&view, sym("Manager")).is_some());
}

#[test]
fn specialization_adult() {
    // §4.1: class Adult includes (select P from Person where P.Age >= 21).
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query("count((select A from A in Adult))").unwrap(),
        Value::Int(5) // everyone but 12-year-old Mark
    );
    // Hierarchy inference: Person is the (only) parent of Adult.
    assert_eq!(view.parents_of(sym("Adult")).unwrap(), vec![sym("Person")]);
    // Inherited attributes flow down into the virtual class.
    assert_eq!(
        view.query(r#"select A.Name from A in Adult where A.Age > 75"#)
            .unwrap(),
        Value::set([Value::str("Julia")])
    );
}

#[test]
fn populations_track_base_updates() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.extent_of(sym("Adult")).unwrap().len(), 5);
    // Mark turns 21.
    let mark = {
        let db = sys.database(sym("Staff")).unwrap();
        let oid = {
            let d = db.read();
            d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
                .into_iter()
                .find(|&o| d.stored_attr(o, sym("Name")).unwrap() == &Value::str("Mark"))
                .unwrap()
        };
        db.write()
            .set_attr(oid, sym("Age"), Value::Int(21))
            .unwrap();
        oid
    };
    assert_eq!(view.extent_of(sym("Adult")).unwrap().len(), 6);
    assert!(DataSource::is_member(
        &view,
        mark,
        DataSource::class_by_name(&view, sym("Adult")).unwrap()
    )
    .unwrap());
}

#[test]
fn example3_top_down_hierarchy() {
    // §4.2 Example 3: Adult/Minor, then Senior/Adolescent below them.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Minor includes (select P from Person where P.Age < 21);
        class Senior includes (select A from Adult where A.Age >= 65);
        class Adolescent includes (select M from Minor where M.Age >= 13);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.parents_of(sym("Senior")).unwrap(), vec![sym("Adult")]);
    assert_eq!(
        view.parents_of(sym("Adolescent")).unwrap(),
        vec![sym("Minor")]
    );
    assert!(view
        .is_subclass_by_name(sym("Senior"), sym("Person"))
        .unwrap());
    // Maggy (66), Denis (70), Julia (80) are seniors.
    assert_eq!(
        view.query("count((select S from S in Senior))").unwrap(),
        Value::Int(3)
    );
    // Mark is 12: a minor but not an adolescent.
    assert_eq!(
        view.query("count((select M from M in Minor))").unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        view.query("count((select M from M in Adolescent))")
            .unwrap(),
        Value::Int(0)
    );
}

#[test]
fn example4_bottom_up_navy_and_ship_variation() {
    // §4.2: Merchant_Vessel/Military_Vessel inserted between Ship and its
    // subclasses.
    let sys = navy_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Navy;
        class Merchant_Vessel includes Tanker, Trawler;
        class Military_Vessel includes Frigate, Cruiser;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // R1: Ship is a superclass of the virtual classes.
    assert_eq!(
        view.parents_of(sym("Merchant_Vessel")).unwrap(),
        vec![sym("Ship")]
    );
    // R2: Tanker and Trawler became subclasses (direct superclass added).
    assert!(view
        .is_subclass_by_name(sym("Tanker"), sym("Merchant_Vessel"))
        .unwrap());
    assert!(view
        .is_subclass_by_name(sym("Trawler"), sym("Merchant_Vessel"))
        .unwrap());
    assert!(!view
        .is_subclass_by_name(sym("Frigate"), sym("Merchant_Vessel"))
        .unwrap());
    // Population = union of the included classes.
    assert_eq!(
        view.query("select V.Name from V in Merchant_Vessel")
            .unwrap(),
        Value::set([Value::str("Erika"), Value::str("Nellie")])
    );
    // §4.3 upward inheritance: Merchant_Vessel acquires Cargo.
    assert_eq!(
        view.query("select V.Cargo from V in Merchant_Vessel")
            .unwrap(),
        Value::set([Value::str("oil"), Value::str("fish")])
    );
    // But not Armament.
    assert!(view
        .query("select V.Armament from V in Merchant_Vessel")
        .is_err());
    // A fully bottom-up Boat over the two virtual classes.
    let view2 = ViewDef::from_script(
        r#"
        create view V2;
        import all classes from database Navy;
        class Merchant_Vessel includes Tanker, Trawler;
        class Military_Vessel includes Frigate, Cruiser;
        class Boat includes Merchant_Vessel, Military_Vessel;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view2.query("count((select B from B in Boat))").unwrap(),
        Value::Int(4)
    );
    assert_eq!(view2.parents_of(sym("Boat")).unwrap(), vec![sym("Ship")]);
}

#[test]
fn example2_government_supported_mixed_population() {
    // §4.1 Example 2: generalization + specialization in one class, plus a
    // virtual attribute on the result.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Senior includes (select A from Adult where A.Age >= 65);
        class Student includes (select P from Person where P.Age < 21);
        class Government_Supported includes Senior, Student,
            (select A in Adult where A.Income < 5000);
        attribute Government_Support_Deduction in class Government_Supported
            has value 1200 + self.Age * 2;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Seniors: Maggy, Denis, Julia. Students: Mark. Low-income adults:
    // Denis (4000), Julia (3000) — union: 4 people.
    assert_eq!(
        view.query("count((select G from G in Government_Supported))")
            .unwrap(),
        Value::Int(4)
    );
    // R2: Senior and Student are subclasses.
    assert!(view
        .is_subclass_by_name(sym("Senior"), sym("Government_Supported"))
        .unwrap());
    // R1: Person is the common superclass.
    assert_eq!(
        view.parents_of(sym("Government_Supported")).unwrap(),
        vec![sym("Person")]
    );
    // The virtual attribute works on members of the virtual class even
    // though their real classes know nothing about it.
    assert_eq!(
        view.query("maggy.Government_Support_Deduction").unwrap(),
        Value::Int(1200 + 66 * 2)
    );
}

#[test]
fn behavioral_generalization_on_sale() {
    // §4.1: class On_Sale includes like On_Sale_Spec.
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Market;
        class On_Sale_Spec type [Price: float, Discount: integer];
        class Car type [Price: float, Discount: integer, Brand: string];
        class House type [Price: float, Discount: integer, City: string];
        class Rock type [Price: float];
        object #1 in Car value [Price: 10000.0, Discount: 10, Brand: "2CV"];
        object #2 in House value [Price: 500000.0, Discount: 3, City: "Paris"];
        object #3 in Rock value [Price: 1.0];
        "#,
    )
    .unwrap();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Market;
        class On_Sale includes like On_Sale_Spec;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Cars and houses conform; rocks lack Discount.
    assert_eq!(
        view.query("count((select X from X in On_Sale))").unwrap(),
        Value::Int(2)
    );
    // R2: conforming classes became subclasses.
    assert!(view
        .is_subclass_by_name(sym("Car"), sym("On_Sale"))
        .unwrap());
    assert!(!view
        .is_subclass_by_name(sym("Rock"), sym("On_Sale"))
        .unwrap());
    // Upward inheritance: Price and Discount are attributes of On_Sale.
    assert_eq!(
        view.query("min((select X.Discount from X in On_Sale))")
            .unwrap(),
        Value::Int(3)
    );
}

#[test]
fn rich_and_beautiful_multiple_inheritance() {
    // §4.2: class Rich&Beautiful includes (select P from Rich where P in
    // Beautiful) — both become superclasses.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 90000);
        class Beautiful includes (select P from Person where P.Age < 67);
        class Rich&Beautiful includes (select P from Rich where P in Beautiful);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let mut parents = view.parents_of(sym("Rich&Beautiful")).unwrap();
    parents.sort();
    assert_eq!(parents, vec![sym("Beautiful"), sym("Rich")]);
    // Maggy: income 90000, age 66 → rich and beautiful. Boss: income
    // 120000, age 50 → also. Denis: poor. Tony: income 50000 → no.
    assert_eq!(
        view.query("count((select P from P in Rich&Beautiful))")
            .unwrap(),
        Value::Int(2)
    );
}

#[test]
fn parameterized_resident_classes() {
    // §4.1: class Resident(X) includes (select P from Person where
    // P.Address.Country = X) — here keyed on City.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Resident(X) includes (select P from Person where P.City = X);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query(r#"count(Resident("London"))"#).unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        view.query(r#"select R.Name from R in Resident("Roma")"#)
            .unwrap(),
        Value::set([Value::str("Julia")])
    );
    // Distinct parameters are distinct classes.
    assert_eq!(
        view.query(r#"count(Resident("Paris") intersect Resident("London"))"#)
            .unwrap(),
        Value::Int(0)
    );
    // Unused parameters: empty class, not an error ("Only finitely many of
    // these classes will be non-empty").
    assert_eq!(
        view.query(r#"count(Resident("Atlantis"))"#).unwrap(),
        Value::Int(0)
    );
    // "As countries are removed … classes automatically disappear or are
    // created": Julia moves to Paris, Resident("Roma") empties.
    let julia = view
        .query(r#"select the P from P in Person where P.Name = "Julia""#)
        .unwrap();
    let Value::Oid(julia) = julia else { panic!() };
    view.update_attr(julia, sym("City"), Value::str("Paris"))
        .unwrap();
    assert_eq!(
        view.query(r#"count(Resident("Roma"))"#).unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        view.query(r#"count(Resident("Paris"))"#).unwrap(),
        Value::Int(3)
    );
    // Arity errors are reported.
    assert!(view.query(r#"count(Resident("a", "b"))"#).is_err());
}

#[test]
fn schizophrenia_policies() {
    // §4.3: Rich and Senior both define Print; an object in both classes is
    // schizophrenic.
    let sys = people_system();
    let script = r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 90000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich " ++ self.Name;
        attribute Print in class Senior has value "senior " ++ self.Name;
    "#;
    let def = ViewDef::from_script(script).unwrap();
    // Maggy is in both Rich and Senior.
    // Policy Error: schizophrenia is reported.
    let strict = def
        .binder(&sys)
        .options(ViewOptions::builder().policy(ConflictPolicy::Error).build())
        .bind()
        .unwrap();
    let err = strict.query("maggy.Print").unwrap_err();
    assert!(
        matches!(err, ViewError::Oodb(OodbError::Schizophrenia { .. })),
        "got {err:?}"
    );
    // Denis is a senior but not rich: no conflict.
    assert_eq!(
        strict.query("denis.Print").unwrap(),
        Value::str("senior Denis")
    );
    // Default policy (creation order): Rich was defined first.
    let default = def.binder(&sys).bind().unwrap();
    assert_eq!(
        default.query("maggy.Print").unwrap(),
        Value::str("rich Maggy")
    );
    // Priority policy: Senior wins.
    let senior_first = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .policy(ConflictPolicy::Priority(vec![sym("Senior")]))
                .build(),
        )
        .bind()
        .unwrap();
    assert_eq!(
        senior_first.query("maggy.Print").unwrap(),
        Value::str("senior Maggy")
    );
}

#[test]
fn redefining_in_an_overlap_class_resolves_conflict() {
    // "inheritance conflicts can be resolved by assigning a class name to
    // overlapping classes … One can then redefine the conflicting methods
    // in the new class."
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 90000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        class Rich&Senior includes (select P from Rich where P in Senior);
        attribute Print in class Rich&Senior has value "both";
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(ViewOptions::builder().policy(ConflictPolicy::Error).build())
    .bind()
    .unwrap();
    // Maggy is in Rich, Senior and Rich&Senior: the overlap class's own
    // definition is the unique most-specific one.
    assert_eq!(view.query("maggy.Print").unwrap(), Value::str("both"));
}

#[test]
fn no_direct_insertion_into_virtual_classes() {
    // §4.1: "it is not possible for a user to insert an object directly
    // into a virtual class. Thus, a Ship object can only be created
    // indirectly."
    let sys = navy_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Navy;
        class Merchant_Vessel includes Tanker, Trawler;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let err = view
        .insert(sym("Merchant_Vessel"), Value::empty_tuple())
        .unwrap_err();
    assert!(matches!(err, ViewError::VirtualInsert(_)));
    // Indirect creation: insert a Tanker, it shows up in Merchant_Vessel.
    view.insert(
        sym("Tanker"),
        Value::tuple([("Name", Value::str("Exxon")), ("Cargo", Value::str("oil"))]),
    )
    .unwrap();
    assert_eq!(
        view.query("count((select V from V in Merchant_Vessel))")
            .unwrap(),
        Value::Int(3)
    );
}

#[test]
fn cyclic_virtual_classes_error() {
    let sys = people_system();
    // B selects from A; then redefine A's population over B? We cannot
    // reference a class before it is defined, so build the cycle through a
    // membership conjunct on a later class: A over Person, B over A, and a
    // third class that queries itself via `in`.
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Selfish includes (select P from Person where P in Selfish);
        "#,
    )
    .unwrap();
    // Binding succeeds or fails depending on when the name resolves; the
    // population must error with a cycle either way.
    match def.binder(&sys).bind() {
        Err(e) => assert!(
            matches!(e, ViewError::CyclicVirtualClass(_) | ViewError::Query(_)),
            "got {e:?}"
        ),
        Ok(view) => {
            let err = view.query("count(Selfish)").unwrap_err();
            assert!(
                matches!(err, ViewError::CyclicVirtualClass(_)),
                "got {err:?}"
            );
        }
    }
}

#[test]
fn family_imaginary_objects() {
    // §5: the Family class.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view Families;
        import all classes from database Staff;
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        attribute Children in class Family has value
            (select C from C in self.Husband.Children);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // One married male with a spouse: Denis.
    let families = view.extent_of(sym("Family")).unwrap();
    assert_eq!(families.len(), 1);
    let fam = families[0];
    assert!(fam.is_imaginary());
    // Core attributes inferred as Person-typed (§5): Husband/Wife.
    assert_eq!(
        view.core_attrs(sym("Family")).unwrap(),
        vec![sym("Husband"), sym("Wife")]
    );
    // Attribute access on the imaginary object.
    assert_eq!(
        view.query("select F.Husband.Name from F in Family")
            .unwrap(),
        Value::set([Value::str("Denis")])
    );
    assert_eq!(
        view.query("select F.Wife.Name from F in Family").unwrap(),
        Value::set([Value::str("Maggy")])
    );
    // Virtual attribute on the imaginary class.
    assert_eq!(
        view.query("select count(F.Children) from F in Family")
            .unwrap(),
        Value::set([Value::Int(1)])
    );
    // Identity is stable across invocations.
    assert_eq!(view.extent_of(sym("Family")).unwrap(), families);
}

#[test]
fn the_two_seemingly_equivalent_queries() {
    // §5.1: the paper's crucial example. With identity tables the nested
    // query returns the same objects; with fresh oids it returns nothing.
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database D;
        class Person type [Name: string, Age: integer, Sex: string, Spouse: Person,
                           Kids: integer];
        object #1 in Person value [Name: "F1", Age: 24, Sex: "male", Spouse: #2, Kids: 6];
        object #2 in Person value [Name: "M1", Age: 24, Sex: "female", Spouse: #1];
        object #3 in Person value [Name: "F2", Age: 50, Sex: "male", Spouse: #4, Kids: 7];
        object #4 in Person value [Name: "M2", Age: 48, Sex: "female", Spouse: #3];
        "#,
    )
    .unwrap();
    let script = r#"
        create view V;
        import all classes from database D;
        class Family includes imaginary
            (select [Father: H, Size: H.Kids]
             from H in Person where H.Sex = "male");
    "#;
    let flat = "select F from F in Family where F.Size > 5 and F.Father.Age < 25";
    let nested = "select F from F in Family where F.Size > 5 \
                  and F in (select G from G in Family where G.Father.Age < 25)";
    // Paper semantics: both return the young large family.
    let stable = ViewDef::from_script(script)
        .unwrap()
        .binder(&sys)
        .bind()
        .unwrap();
    let a = stable.query(flat).unwrap();
    let b = stable.query(nested).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.as_set().unwrap().len(), 1);
    // Naive fresh-oid semantics: re-evaluating Family yields different
    // oids, so the membership test fails — "we may obtain an empty set".
    let fresh = ViewDef::from_script(script)
        .unwrap()
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .identity_mode(IdentityMode::Fresh)
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        )
        .bind()
        .unwrap();
    let c = fresh.query(nested).unwrap();
    assert_eq!(c.as_set().unwrap().len(), 0, "fresh oids diverge");
}

#[test]
fn imaginary_identity_survives_unrelated_updates() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let before = view.extent_of(sym("Family")).unwrap();
    // An unrelated update invalidates population caches…
    let tony = DataSource::named_object(&view, sym("tony")).unwrap();
    view.update_attr(tony, sym("Age"), Value::Int(33)).unwrap();
    // …but the family keeps its oid (same core tuple → same oid, §5.1).
    let after = view.extent_of(sym("Family")).unwrap();
    assert_eq!(before, after);
    assert_eq!(view.identity_table_len(sym("Family")), 1);
}

#[test]
fn example5_value_to_object_addresses() {
    // §5 Example 5: addresses become shared objects.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view Value_to_Object;
        import all classes from database Staff;
        class Address includes imaginary
            (select [City: P.City, Street: P.Street]
             from P in Person);
        attribute Location in class Person has value
            (select the A from A in Address
             where A.City = self.City and A.Street = self.Street);
        hide attributes City, Street, Zip_Code in class Person;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Maggy, Denis and Mark share one address object; Tony and Boss share
    // another; Julia has her own: 3 address objects.
    assert_eq!(view.extent_of(sym("Address")).unwrap().len(), 3);
    let maggy_loc = view.query("maggy.Location").unwrap();
    let denis_loc = view.query("denis.Location").unwrap();
    assert_eq!(maggy_loc, denis_loc, "addresses are shared objects");
    // The raw components are hidden.
    assert!(view.query("maggy.City").is_err());
    // But reachable through the address object.
    assert_eq!(
        view.query("maggy.Location.City").unwrap(),
        Value::str("London")
    );
    // "When Maggy moves out of 10 Downing Street, the attribute … will
    // point to a different object … the object corresponding to 10 Downing
    // Street may still be used" — Denis still lives there. The move happens
    // in the *base* database (the view hides City from its own users).
    let maggy = DataSource::named_object(&view, sym("maggy")).unwrap();
    assert!(matches!(
        view.update_attr(maggy, sym("City"), Value::str("Dulwich")),
        Err(ViewError::HiddenAttr { .. })
    ));
    {
        let staff = sys.database(sym("Staff")).unwrap();
        let mut staff = staff.write();
        staff
            .set_attr(maggy, sym("City"), Value::str("Dulwich"))
            .unwrap();
        staff
            .set_attr(maggy, sym("Street"), Value::str("Hambledon Place"))
            .unwrap();
    }
    let new_maggy_loc = view.query("maggy.Location").unwrap();
    assert_ne!(new_maggy_loc, maggy_loc);
    assert_eq!(view.query("denis.Location").unwrap(), denis_loc);
    assert_eq!(view.extent_of(sym("Address")).unwrap().len(), 4);
}

#[test]
fn example6_poorly_designed_view_churns_identity() {
    // §5.1 Example 6: Address as a *core* attribute of Client makes a move
    // change the client's identity — reproduced, then fixed.
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Insurance;
        class Policy type [Policy_Number: integer, Coverage: string, Cost: integer,
                           PName: string, PAddress: string, PAge: integer, SS: integer];
        object #1 in Policy value [Policy_Number: 1, Coverage: "life", Cost: 100,
                                   PName: "Maggy", PAddress: "10 Downing", PAge: 66, SS: 42];
        name policy1 = #1;
        "#,
    )
    .unwrap();
    let poor = ViewDef::from_script(
        r#"
        create view My_Clients;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, CAge: P.PAge, SS: P.SS, CAddress: P.PAddress, Policy: P]
             from P in Policy);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let before = poor.extent_of(sym("Client")).unwrap();
    // Maggy's address is updated…
    let policy = DataSource::named_object(&poor, sym("policy1")).unwrap();
    poor.update_attr(policy, sym("PAddress"), Value::str("Hambledon"))
        .unwrap();
    let after = poor.extent_of(sym("Client")).unwrap();
    // …and "as far as the system is concerned, Maggy before moving and
    // after moving are two different clients."
    assert_ne!(before, after);
    assert_eq!(
        poor.identity_table_len(sym("Client")),
        2,
        "identity churned"
    );

    // The fix: Address as a *virtual* attribute of Client.
    let good = ViewDef::from_script(
        r#"
        create view My_Clients_Fixed;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, Policy: P] from P in Policy);
        attribute CAddress in class Client has value self.Policy.PAddress;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let before = good.extent_of(sym("Client")).unwrap();
    good.update_attr(policy, sym("PAddress"), Value::str("Elsewhere"))
        .unwrap();
    let after = good.extent_of(sym("Client")).unwrap();
    assert_eq!(before, after, "identity stable under the fixed design");
    assert_eq!(
        good.query(r#"select C.CAddress from C in Client"#).unwrap(),
        Value::set([Value::str("Elsewhere")])
    );
}

#[test]
fn identity_gc_drops_dead_entries_and_keeps_live_oids() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Address includes imaginary
            (select [City: P.City] from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let before = view.extent_of(sym("Address")).unwrap();
    assert_eq!(view.identity_table_len(sym("Address")), 3); // London/Paris/Roma
                                                            // Julia leaves Roma: the Roma address becomes dead.
    let julia = view
        .query(r#"select the P from P in Person where P.Name = "Julia""#)
        .unwrap();
    let Value::Oid(julia) = julia else { panic!() };
    view.update_attr(julia, sym("City"), Value::str("Paris"))
        .unwrap();
    view.extent_of(sym("Address")).unwrap();
    assert_eq!(
        view.identity_table_len(sym("Address")),
        3,
        "dead entry retained"
    );
    let removed = view.gc_identity(sym("Address")).unwrap();
    assert_eq!(removed, 1);
    assert_eq!(view.identity_table_len(sym("Address")), 2);
    // Live addresses kept their oids.
    let after = view.extent_of(sym("Address")).unwrap();
    for o in &after {
        assert!(before.contains(o), "live oid changed across gc");
    }
    // But a *collected* tuple that reappears gets a fresh oid — the
    // documented trade-off of collecting.
    view.update_attr(julia, sym("City"), Value::str("Roma"))
        .unwrap();
    let reappeared = view.extent_of(sym("Address")).unwrap();
    assert_eq!(reappeared.len(), 3);
    assert!(reappeared.iter().any(|o| !before.contains(o)));
}

#[test]
fn imaginary_core_attributes_are_immutable_through_the_view() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Family includes imaginary
            (select [Husband: H] from H in Person where H.Sex = "male");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let fam = view.extent_of(sym("Family")).unwrap()[0];
    let err = view
        .update_attr(fam, sym("Husband"), Value::Null)
        .unwrap_err();
    assert!(matches!(err, ViewError::CoreAttrUpdate { .. }));
    assert!(matches!(
        view.delete(fam),
        Err(ViewError::ImaginaryUpdate(_))
    ));
}

#[test]
fn same_tuple_different_class_different_oid() {
    // §5.1: "a tuple will generate a different oid when used in a
    // different class."
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class CityA includes imaginary (select [City: P.City] from P in Person);
        class CityB includes imaginary (select [City: P.City] from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let a = view.extent_of(sym("CityA")).unwrap();
    let b = view.extent_of(sym("CityB")).unwrap();
    assert_eq!(a.len(), b.len());
    assert!(a.iter().all(|o| !b.contains(o)), "disjoint oid sets");
}

#[test]
fn materialize_snapshots_the_view() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        attribute Greeting in class Person has value "hi " ++ self.Name;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let db = view.materialize(sym("Snapshot")).unwrap();
    // Classes: Person, Employee, Manager, Adult, Family (hidden attr gone).
    assert!(db.schema.class_by_name(sym("Adult")).is_some());
    // Unique-root materialization: the three plain persons who are adults
    // become *real* in Adult. Tony and Boss are adults too, but Employee
    // and Adult are incomparable classes — an object can be real in only
    // one, so they stay employees. (Exactly the rigidity the paper's view
    // mechanism exists to escape: the overlap is representable in the view
    // but not in a materialized unique-root database.)
    let adult = db.schema.class_by_name(sym("Adult")).unwrap();
    assert_eq!(db.deep_extent(adult).len(), 3);
    let employee_cls = db.schema.class_by_name(sym("Employee")).unwrap();
    assert_eq!(db.deep_extent(employee_cls).len(), 2);
    let family = db.schema.class_by_name(sym("Family")).unwrap();
    assert_eq!(db.deep_extent(family).len(), 1);
    let employee = db.schema.class_by_name(sym("Employee")).unwrap();
    assert!(!db
        .schema
        .visible_attrs(employee)
        .contains_key(&sym("Salary")));
    // Computed attributes became stored values.
    let person = db.schema.class_by_name(sym("Person")).unwrap();
    let someone = db.deep_extent(person)[0];
    let greeting = db.stored_attr(someone, sym("Greeting")).unwrap();
    assert!(greeting.as_str().unwrap().starts_with("hi "));
    // The snapshot is a plain database: it can be registered and queried.
    let mut sys2 = System::new();
    sys2.add_database(db).unwrap();
    let handle = sys2.database(sym("Snapshot")).unwrap();
    let n = ov_query::run_query(&*handle.read(), "count((select A from A in Adult))").unwrap();
    assert_eq!(n, Value::Int(3));
    // And a second view stacks on top of it ("views on top of views").
    let stacked = ViewDef::from_script(
        r#"
        create view V2;
        import all classes from database Snapshot;
        class Elder includes (select A from Adult where A.Age >= 65);
        "#,
    )
    .unwrap()
    .binder(&sys2)
    .bind()
    .unwrap();
    assert_eq!(
        stacked.query("count((select E from E in Elder))").unwrap(),
        Value::Int(3) // Maggy, Denis, Julia — all real in Adult
    );
}

#[test]
fn population_caching_matches_recompute() {
    let sys = people_system();
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap();
    let cached = def.binder(&sys).bind().unwrap();
    let recompute = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        )
        .bind()
        .unwrap();
    for _ in 0..3 {
        assert_eq!(
            cached.extent_of(sym("Adult")).unwrap(),
            recompute.extent_of(sym("Adult")).unwrap()
        );
    }
}

#[test]
fn incremental_materialization_tracks_updates() {
    let sys = people_system();
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Senior includes (select A from Adult where A.Age >= 65);
        "#,
    )
    .unwrap();
    let incremental = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .materialization(Materialization::Incremental)
                .build(),
        )
        .bind()
        .unwrap();
    let recompute = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        )
        .bind()
        .unwrap();
    // Warm the cache.
    assert_eq!(
        incremental.extent_of(sym("Adult")).unwrap(),
        recompute.extent_of(sym("Adult")).unwrap()
    );
    let warm = incremental.stats();
    assert!(warm.recomputations >= 1);
    assert_eq!(warm.incremental_updates, 0);
    let db = sys.database(sym("Staff")).unwrap();
    // Update: Mark becomes an adult; delete: Julia leaves; insert: a baby.
    let mark = {
        let d = db.read();
        d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
            .into_iter()
            .find(|&o| d.stored_attr(o, sym("Name")).unwrap() == &Value::str("Mark"))
            .unwrap()
    };
    db.write()
        .set_attr(mark, sym("Age"), Value::Int(30))
        .unwrap();
    assert_eq!(
        incremental.extent_of(sym("Adult")).unwrap(),
        recompute.extent_of(sym("Adult")).unwrap()
    );
    assert!(
        incremental.stats().incremental_updates >= 1,
        "delta path did not fire"
    );
    let julia = {
        let d = db.read();
        d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
            .into_iter()
            .find(|&o| d.stored_attr(o, sym("Name")).unwrap() == &Value::str("Julia"))
            .unwrap()
    };
    db.write().delete_object(julia).unwrap();
    {
        let mut d = db.write();
        let person = d.schema.class_by_name(sym("Person")).unwrap();
        d.create_object(
            person,
            Value::tuple([("Name", Value::str("Baby")), ("Age", Value::Int(0))]),
        )
        .unwrap();
    }
    assert_eq!(
        incremental.extent_of(sym("Adult")).unwrap(),
        recompute.extent_of(sym("Adult")).unwrap()
    );
    // The chained class maintains through the virtual parent too.
    assert_eq!(
        incremental.extent_of(sym("Senior")).unwrap(),
        recompute.extent_of(sym("Senior")).unwrap()
    );
}

#[test]
fn incremental_falls_back_on_journal_gap() {
    let sys = people_system();
    // Shrink the journal so a burst of updates overflows it.
    {
        let db = sys.database(sym("Staff")).unwrap();
        db.write().store.set_journal_cap(2);
    }
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .build(),
    )
    .bind()
    .unwrap();
    let before = view.extent_of(sym("Adult")).unwrap().len();
    let db = sys.database(sym("Staff")).unwrap();
    // Ten updates blow past the two-entry journal.
    let oids = {
        let d = db.read();
        d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
    };
    for (i, &o) in oids.iter().enumerate().take(5) {
        db.write()
            .set_attr(o, sym("Age"), Value::Int(30 + i as i64))
            .unwrap();
    }
    // Still correct (full recompute happened under the hood).
    let after = view.extent_of(sym("Adult")).unwrap().len();
    assert!(after >= before, "everyone updated is now an adult");
    assert_eq!(after, 6);
}

#[test]
fn incremental_with_imaginary_class_recomputes() {
    // Imaginary includes are opaque to delta maintenance; the mode must
    // still produce correct results by falling back.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Family includes imaginary
            (select [Husband: H] from H in Person where H.Sex = "male");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .build(),
    )
    .bind()
    .unwrap();
    let before = view.extent_of(sym("Family")).unwrap();
    let db = sys.database(sym("Staff")).unwrap();
    let denis = db.read().named(sym("denis")).unwrap();
    db.write()
        .set_attr(denis, sym("Age"), Value::Int(71))
        .unwrap();
    // Unrelated update: same families, same oids (identity table).
    assert_eq!(view.extent_of(sym("Family")).unwrap(), before);
}

#[test]
fn index_pushdown_agrees_with_scan() {
    let sys = people_system();
    // Index City on Person (and subclasses) in the base database.
    {
        let db = sys.database(sym("Staff")).unwrap();
        let mut db = db.write();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.create_index(person, sym("City")).unwrap();
    }
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Londoner includes (select P from Person where P.City = "London");
        class Resident(X) includes (select P from Person where P.City = X);
        "#,
    )
    .unwrap();
    let view = def.binder(&sys).bind().unwrap();
    // Pushdown answers equal the scan-based query — and the counters prove
    // the index path actually ran.
    let indexed = view.extent_of(sym("Londoner")).unwrap();
    assert!(view.stats().index_pushdowns >= 1, "index path did not fire");
    let scanned = view
        .query(r#"select P from P in Person where P.City = "London""#)
        .unwrap();
    let scanned: Vec<_> = scanned
        .as_set()
        .unwrap()
        .iter()
        .map(|v| v.as_oid().unwrap())
        .collect();
    assert_eq!(indexed, scanned);
    assert_eq!(indexed.len(), 3);
    // Parameterized instances take the same fast path after substitution.
    assert_eq!(
        view.query(r#"count(Resident("Paris"))"#).unwrap(),
        Value::Int(2)
    );
    // Index maintenance: the population tracks updates through the index.
    let maggy = DataSource::named_object(&view, sym("maggy")).unwrap();
    view.update_attr(maggy, sym("City"), Value::str("Paris"))
        .unwrap();
    assert_eq!(view.extent_of(sym("Londoner")).unwrap().len(), 2);
    assert_eq!(
        view.query(r#"count(Resident("Paris"))"#).unwrap(),
        Value::Int(3)
    );
}

#[test]
fn queries_through_views_typecheck() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let q = ov_query::parse_select("select A.Name from A in Adult").unwrap();
    let ty = ov_query::infer_select(&view, &q).unwrap();
    assert_eq!(ty, ov_oodb::Type::set(ov_oodb::Type::Str));
    // Hidden attributes are invisible to the type checker too.
    let view2 = ViewDef::from_script(
        r#"
        create view V2;
        import all classes from database Staff;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let q = ov_query::parse_select("select E.Salary from E in Employee").unwrap();
    assert!(ov_query::infer_select(&view2, &q).is_err());
}

#[test]
fn unknown_import_targets_error() {
    let sys = people_system();
    assert!(matches!(
        ViewDef::from_script("create view V; import all classes from database Nope;")
            .unwrap()
            .binder(&sys)
            .bind(),
        Err(ViewError::Oodb(OodbError::UnknownDatabase(_)))
    ));
    assert!(matches!(
        ViewDef::from_script("create view V; import class Ghost from database Staff;")
            .unwrap()
            .binder(&sys)
            .bind(),
        Err(ViewError::Oodb(OodbError::UnknownClass(_)))
    ));
    assert!(matches!(
        ViewDef::from_script(
            "create view V; import all classes from database Staff; \
             hide attribute Wings in class Person;"
        )
        .unwrap()
        .binder(&sys)
        .bind(),
        Err(ViewError::Oodb(OodbError::UnknownAttr { .. }))
    ));
}

#[test]
fn non_object_population_rejected() {
    let sys = people_system();
    let err = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Bad includes (select [N: P.Name] from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap_err();
    assert!(matches!(err, ViewError::NonObjectPopulation { .. }));
    let err = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Bad includes imaginary (select P from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap_err();
    assert!(matches!(err, ViewError::NonTuplePopulation { .. }));
    let err = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Bad includes Person, imaginary (select [N: P.Name] from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap_err();
    assert!(matches!(err, ViewError::MixedImaginary(_)));
}

#[test]
fn methods_with_arguments_work_through_views() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        attribute OlderThan(n: integer) in class Person has value self.Age > n;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query("maggy.OlderThan(60)").unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        view.query("maggy.OlderThan(70)").unwrap(),
        Value::Bool(false)
    );
    assert_eq!(
        view.query("select P.Name from P in Person where P.OlderThan(69)")
            .unwrap(),
        Value::set([Value::str("Denis"), Value::str("Julia")])
    );
}

#[test]
fn bodiless_attribute_decl_requires_existing_stored() {
    let sys = people_system();
    // Re-declaring an existing stored attribute is fine.
    assert!(ViewDef::from_script(
        "create view V; import all classes from database Staff; \
         attribute Salary in class Employee;"
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .is_ok());
    // Declaring a brand-new stored attribute is not: views store nothing.
    let err = ViewDef::from_script(
        "create view V; import all classes from database Staff; \
         attribute Wings of type integer in class Person;",
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap_err();
    assert!(matches!(err, ViewError::Definition(_)));
}

#[test]
fn isa_conjuncts_contribute_superclasses() {
    // Like `P in Beautiful`, an `isa` conjunct proves membership and adds a
    // superclass (§4.2's type-system detection, the other spelling).
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 90000);
        class RichEmployee includes (select P from Rich where P isa Employee);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let mut parents = view.parents_of(sym("RichEmployee")).unwrap();
    parents.sort();
    assert_eq!(parents, vec![sym("Employee"), sym("Rich")]);
    // Only Boss is both rich and an employee.
    assert_eq!(
        view.query("select P.Name from P in RichEmployee").unwrap(),
        Value::set([Value::str("Boss")])
    );
}

#[test]
fn parameterized_imaginary_classes() {
    // Parameter substitution reaches inside imaginary includes too.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class StreetsOf(C) includes imaginary
            (select [Street: P.Street] from P in Person where P.City = C);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query(r#"count(StreetsOf("London"))"#).unwrap(),
        Value::Int(1) // everyone in London lives on 10 Downing
    );
    assert_eq!(
        view.query(r#"count(StreetsOf("Paris"))"#).unwrap(),
        Value::Int(1)
    );
    // Identity is stable per instance and distinct across instances.
    let london = view.query(r#"StreetsOf("London")"#).unwrap();
    assert_eq!(view.query(r#"StreetsOf("London")"#).unwrap(), london);
    let paris = view.query(r#"StreetsOf("Paris")"#).unwrap();
    assert_ne!(london, paris);
}

// ----------------------------------------------------------------------
// Explainable evaluation: population plans, traces, write-path fixes
// ----------------------------------------------------------------------

#[test]
fn explain_population_reports_all_three_paths() {
    use ov_query::{PopPath, ScanKind};
    let sys = people_system();
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap();

    // Cold cached view: the first request is a full recompute, and its one
    // include-term scan ran sequentially (the extent is tiny).
    let cached = def.binder(&sys).bind().unwrap();
    let cold = cached.explain_population(sym("Adult")).unwrap();
    let PopPath::FullRecompute { scans } = &cold.path else {
        panic!("cold population should recompute, got {cold}");
    };
    let [scan] = scans.as_slice() else {
        panic!("one include-term scan expected: {cold}");
    };
    assert_eq!(
        scan.kind,
        ScanKind::Sequential {
            engine: ov_query::Engine::Compiled {
                batch: ov_query::batch_rows()
            }
        },
        "{cold}"
    );
    // The scan measured its own work: every Person row was scanned, the
    // five adults matched.
    assert_eq!(scan.actuals.rows_matched, 5, "{cold}");
    assert!(scan.actuals.rows_scanned >= 5, "{cold}");
    assert_eq!(cold.rows, 5);
    assert!(cold.nanos > 0, "timings must be recorded");

    // Warm: the version-keyed cache answers.
    let warm = cached.explain_population(sym("Adult")).unwrap();
    assert_eq!(warm.path, PopPath::CacheHit, "{warm}");
    assert_eq!(warm.rows, 5);
    assert!(warm.nanos > 0);

    // Incremental view, warmed, after exactly one base write: the delta
    // path re-tests exactly the one changed oid.
    let inc = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .materialization(Materialization::Incremental)
                .build(),
        )
        .bind()
        .unwrap();
    inc.extent_of(sym("Adult")).unwrap();
    let db = sys.database(sym("Staff")).unwrap();
    let maggy = db.read().named(sym("maggy")).unwrap();
    db.write()
        .set_attr(maggy, sym("Age"), Value::Int(67))
        .unwrap();
    let delta = inc.explain_population(sym("Adult")).unwrap();
    assert_eq!(delta.path, PopPath::Delta { retested: 1 }, "{delta}");
    assert_eq!(delta.rows, 5);

    // The rendering names the path — this is what `.plan` prints in ovq.
    assert!(delta.to_string().contains("Delta{retested=1}"));
}

#[test]
fn explain_population_reports_index_pushdown() {
    use ov_query::{PopPath, ScanKind};
    let sys = people_system();
    {
        let db = sys.database(sym("Staff")).unwrap();
        let mut db = db.write();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.create_index(person, sym("City")).unwrap();
    }
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Londoner includes (select P from Person where P.City = "London");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let trace = view.explain_population(sym("Londoner")).unwrap();
    let PopPath::FullRecompute { scans } = &trace.path else {
        panic!("expected recompute, got {trace}");
    };
    let [scan] = scans.as_slice() else {
        panic!("one include-term scan expected: {trace}");
    };
    assert_eq!(
        scan.kind,
        ScanKind::IndexPushdown {
            index: "Person.City".into(),
            engine: ov_query::Engine::Compiled {
                batch: ov_query::batch_rows()
            }
        },
        "{trace}"
    );
    // The index narrowed the scan to exactly the matching candidates.
    assert_eq!(scan.actuals.rows_scanned, 3, "{trace}");
    assert_eq!(scan.actuals.rows_matched, 3, "{trace}");
    assert_eq!(trace.rows, 3);
}

#[test]
fn explain_query_traces_stages_and_populations() {
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let (value, trace) = view.explain("select A.Name from A in Adult").unwrap();
    assert_eq!(value.as_set().unwrap().len(), 5);
    let names: Vec<_> = trace.stages.iter().map(|s| s.name).collect();
    assert_eq!(names, ["parse", "typecheck", "optimize", "execute"]);
    assert_eq!(trace.rows, Some(5));
    assert!(
        trace.populations.iter().any(|p| p.class == sym("Adult")),
        "execution should have populated Adult: {trace}"
    );
    // Re-running hits the cache, and the trace says so.
    let (_, warm) = view.explain("select A.Name from A in Adult").unwrap();
    assert!(
        warm.populations
            .iter()
            .any(|p| p.path == ov_query::PopPath::CacheHit),
        "{warm}"
    );
}

#[test]
fn hidden_attr_write_blocked_even_when_absent_from_visible_attrs() {
    // `hide attribute Salary in class Employee` and an object real in
    // *Person*: Salary has no visible definition at Person, so the old
    // code skipped the hide check entirely and forwarded the write to the
    // base store. The name check must still fire (§3: hides are
    // subclass-closed), and the error must be HiddenAttr — not the base
    // store's UnknownAttr — proving the view blocked it.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let maggy = DataSource::named_object(&view, sym("maggy")).unwrap();
    assert!(matches!(
        view.update_attr(maggy, sym("Salary"), Value::Int(1)),
        Err(ViewError::HiddenAttr { .. })
    ));
    // The hide also blocks the write on objects where Salary *is* visible.
    let tony = DataSource::named_object(&view, sym("tony")).unwrap();
    assert!(matches!(
        view.update_attr(tony, sym("Salary"), Value::Int(1)),
        Err(ViewError::HiddenAttr { .. })
    ));
}

#[test]
fn computed_attr_write_rejected_not_silently_stored() {
    // The view redefines the stored base attribute Income as computed.
    // Writing Income through the view used to fall through to the base
    // store: the write landed on an attribute the view never reads back.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        attribute Income in class Person has value self.Age * 1000;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let tony = DataSource::named_object(&view, sym("tony")).unwrap();
    let err = view
        .update_attr(tony, sym("Income"), Value::Int(1))
        .unwrap_err();
    assert!(matches!(err, ViewError::ComputedAttrUpdate { .. }), "{err}");
    // Nothing was written underneath the view.
    let db = sys.database(sym("Staff")).unwrap();
    assert_eq!(
        db.read().stored_attr(tony, sym("Income")).unwrap(),
        &Value::Int(50000)
    );
}

#[test]
fn delete_sweeps_identity_entries_referencing_the_dead_oid() {
    // Regression: `delete()` left identity-table entries whose core tuple
    // referenced the deleted oid, so under IdentityMode::Table the stale
    // entry (and its cached imaginary object) survived the base object.
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Couple includes imaginary
            (select [Husband: W.Spouse, Wife: W] from W in Person
             where W.Name = "Maggy");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let couples = view.extent_of(sym("Couple")).unwrap();
    assert_eq!(couples.len(), 1);
    assert_eq!(view.identity_table_len(sym("Couple")), 1);
    // Denis (Maggy's spouse) dies.
    let denis = DataSource::named_object(&view, sym("denis")).unwrap();
    view.delete(denis).unwrap();
    // The stale entry and its imaginary object are gone immediately —
    // no gc_identity call needed, no resurrection from the dead tuple.
    assert_eq!(
        view.identity_table_len(sym("Couple")),
        0,
        "stale identity entry survived the delete"
    );
    assert!(!DataSource::object_exists(&view, couples[0]));
    // Deletion leaves Maggy's Spouse dangling, so the recomputed core
    // tuple is *equal* to the dead one. Without the sweep, the stale
    // entry would hand the old oid back for it — resurrection from a
    // dead tuple. With it, the equal tuple gets a fresh oid.
    let after = view.extent_of(sym("Couple")).unwrap();
    assert_eq!(after.len(), 1);
    assert!(
        !after.contains(&couples[0]),
        "oid resurrected from a dead tuple"
    );
}

// ----------------------------------------------------------------------
// Robustness: fault injection, retries, graceful degradation
// ----------------------------------------------------------------------

/// Fault-injection state is process-global; tests that arm it serialize on
/// this lock and clear the registry on both entry and exit.
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ov_oodb::faults::clear();
    guard
}

fn adult_view(sys: &System) -> crate::View {
    ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(sys)
    .bind()
    .unwrap()
}

#[test]
fn transient_population_fault_is_retried() {
    let _guard = fault_lock();
    let sys = people_system();
    let view = adult_view(&sys);
    // First recompute attempt fails; the retry succeeds.
    ov_oodb::faults::arm(
        "view.population_recompute",
        ov_oodb::FaultSchedule::Nth(1),
        ov_oodb::FaultAction::Error,
    );
    let v = view.query("count(Adult)").unwrap();
    assert_eq!(v, Value::Int(5));
    let stats = view.stats();
    assert_eq!(stats.fault_retries, 1, "{stats:?}");
    assert_eq!(stats.stale_serves, 0, "{stats:?}");
    assert_eq!(stats.recomputations, 2, "one failed + one good: {stats:?}");
    ov_oodb::faults::clear();
}

#[test]
fn failed_recompute_serves_stale_population() {
    let _guard = fault_lock();
    let sys = people_system();
    let view = adult_view(&sys);
    // Warm the cache, then invalidate it with a base write that EVICTS an
    // adult (Maggy drops below the filter).
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
    let db = sys.database(sym("Staff")).unwrap();
    let maggy = db.read().named(sym("maggy")).unwrap();
    db.write()
        .set_attr(maggy, sym("Age"), Value::Int(20))
        .unwrap();
    // Every recompute attempt now fails: the view serves the stale cached
    // population (still 5 members) with the marker visible in the trace.
    ov_oodb::faults::arm(
        "view.population_recompute",
        ov_oodb::FaultSchedule::From(1),
        ov_oodb::FaultAction::Error,
    );
    let trace = view.explain_population(sym("Adult")).unwrap();
    assert_eq!(
        trace.path,
        ov_query::PopPath::StaleServe { attempts: 3 },
        "{trace}"
    );
    assert_eq!(trace.rows, 5, "stale generation, not a blend: {trace}");
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
    let stats = view.stats();
    assert!(stats.stale_serves >= 2, "{stats:?}");
    assert_eq!(stats.fault_retries, 4, "2 retries per request: {stats:?}");
    // Fault cleared: the next request recomputes and sees the eviction.
    ov_oodb::faults::clear();
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(4));
}

#[test]
fn degraded_error_when_no_cached_population() {
    let _guard = fault_lock();
    let sys = people_system();
    let view = adult_view(&sys);
    // Cold cache + every attempt fails: nothing to serve stale.
    ov_oodb::faults::arm(
        "view.population_recompute",
        ov_oodb::FaultSchedule::From(1),
        ov_oodb::FaultAction::Error,
    );
    let err = view.query("count(Adult)").unwrap_err();
    let ViewError::Degraded {
        class,
        attempts,
        ref cause,
    } = err
    else {
        panic!("expected Degraded, got {err}");
    };
    assert_eq!(class, sym("Adult"));
    assert_eq!(attempts, 3);
    assert!(cause.is_transient());
    assert!(err.is_transient());
    // The chain bottoms out in the injected fault.
    let mut cur: &dyn std::error::Error = &err;
    while let Some(next) = std::error::Error::source(cur) {
        cur = next;
    }
    assert!(
        cur.to_string().contains("view.population_recompute"),
        "chain tail: {cur}"
    );
    ov_oodb::faults::clear();
    // The view recovers completely once the fault clears.
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
}

#[test]
fn budget_breach_during_population_stays_typed() {
    let _guard = fault_lock();
    let sys = people_system();
    let view = adult_view(&sys);
    let budget = std::sync::Arc::new(ov_query::Budget::new().with_max_steps(3));
    let err = ov_query::run_query_with_budget(&view, "count(Adult)", budget).unwrap_err();
    assert!(
        matches!(err, ov_query::QueryError::ResourceExhausted(_)),
        "budget breaches must not be retried or masked: {err}"
    );
}

#[test]
fn faulting_chunks_fall_back_to_sequential_then_trip_the_breaker() {
    let _guard = fault_lock();
    let sys = people_system();
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap();
    let view = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .parallel(ov_query::ParallelConfig {
                    threads: 2,
                    threshold: 2,
                })
                .build(),
        )
        .bind()
        .unwrap();
    ov_oodb::faults::arm(
        "view.scan_chunk",
        ov_oodb::FaultSchedule::From(1),
        ov_oodb::FaultAction::Error,
    );
    let db = sys.database(sym("Staff")).unwrap();
    let maggy = db.read().named(sym("maggy")).unwrap();
    // Each round: invalidate the cache, repopulate. The parallel scan
    // fails, the sequential fallback still answers correctly; after three
    // strikes the view stops attempting parallel scans at all.
    for round in 0..5u32 {
        db.write()
            .set_attr(maggy, sym("Age"), Value::Int(66 + i64::from(round)))
            .unwrap();
        assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
    }
    let stats = view.stats();
    assert_eq!(stats.parallel_scans, 3, "breaker trips after 3: {stats:?}");
    assert_eq!(stats.seq_fallbacks, 3, "{stats:?}");
    ov_oodb::faults::clear();
}

#[test]
fn panicking_chunk_becomes_typed_fallback_not_a_crash() {
    let _guard = fault_lock();
    let sys = people_system();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .parallel(ov_query::ParallelConfig {
                threads: 2,
                threshold: 2,
            })
            .build(),
    )
    .bind()
    .unwrap();
    // The first chunk hit panics on its worker thread; the coordinator
    // converts it to a typed error and the sequential fallback answers.
    ov_oodb::faults::arm(
        "view.scan_chunk",
        ov_oodb::FaultSchedule::Nth(1),
        ov_oodb::FaultAction::Panic,
    );
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
    let stats = view.stats();
    assert_eq!(stats.seq_fallbacks, 1, "{stats:?}");
    // Privileged visibility did not leak from the unwound population.
    assert_eq!(view.query("count(Adult)").unwrap(), Value::Int(5));
    ov_oodb::faults::clear();
}

#[test]
fn binder_stacks_views_programmatically() {
    let sys = people_system();
    let base = ViewDef::from_script(
        r#"
        create view Adults;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap();
    let upper = ViewDef::from_script(
        r#"
        create view Seniors;
        import all classes from view Adults;
        class Senior includes (select A from Adult where A.Age >= 65);
        "#,
    )
    .unwrap();
    let view = upper.binder(&sys).over(&base).bind().unwrap();
    assert_eq!(view.query("count(Senior)").unwrap(), Value::Int(3));
    // The stacked view's definition reads only the upstream view; its
    // reach to database Staff is mediated by Adults (the dependency graph
    // closes over view edges transitively).
    let deps = view.dependencies();
    assert!(deps
        .iter()
        .any(|e| e.on == crate::graph::DepTarget::View(sym("Adults"))
            && e.classes.contains(&sym("Adult"))));
    assert!(!deps
        .iter()
        .any(|e| e.on == crate::graph::DepTarget::Database(sym("Staff"))));
    // A view import must take all classes; cherry-picking is base-only.
    let bad = ViewDef::new(sym("Partial")).import_class(sym("Adults"), sym("Adult"));
    assert!(bad.binder(&sys).over(&base).bind().is_err());
    // Importing an unknown upstream still reads as an unknown database.
    assert!(upper.binder(&sys).bind().is_err());
}

/// The deprecated `bind`/`bind_with` wrappers stay working until removal.
#[test]
#[allow(deprecated)]
fn deprecated_bind_wrappers_still_bind() {
    let sys = people_system();
    let def = ViewDef::new(sym("V")).import_all(sym("Staff"));
    assert_eq!(
        def.bind(&sys).unwrap().query("count(Person)").unwrap(),
        Value::Int(6)
    );
    let opts = ViewOptions::builder()
        .materialization(Materialization::AlwaysRecompute)
        .build();
    assert_eq!(
        def.bind_with(&sys, opts)
            .unwrap()
            .query("count(Person)")
            .unwrap(),
        Value::Int(6)
    );
}
