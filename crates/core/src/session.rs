//! Interactive sessions: databases and views under one prompt.
//!
//! A [`Session`] owns a [`System`] of databases and a set of named views,
//! and executes statements one at a time, the way the paper's programmer
//! works: build a base database, `create view`, add imports / virtual
//! classes / attributes incrementally, and query either world at any
//! point. Views rebind automatically as their definitions grow, so each
//! definition statement is checked the moment it is entered.
//!
//! This is the engine behind the `ovq` REPL binary (workspace root).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ov_oodb::{sym, Durability, Oid, OodbError, Symbol, System, Value, WalStatus};
use ov_query::{execute_stmts_with_map, parse_program, Stmt};

use crate::def::{AttrDecl, Hide, Import, ViewDef, ViewElement, VirtualClassDef};
use crate::error::{Result, ViewError};
use crate::graph::{DepTarget, DependencyGraph};
use crate::view::{Materialization, View, ViewOptions};

/// What the prompt currently points at.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Focus {
    Nothing,
    Database(Symbol),
    View(Symbol),
}

/// The result of executing one statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Outcome {
    /// Statement executed; nothing to show.
    Done,
    /// A query (or insert) produced a value.
    Value(Value),
    /// A human-readable notice (context switches etc.).
    Notice(String),
}

/// An interactive session over a system of databases and named views.
pub struct Session {
    pub(crate) system: System,
    pub(crate) views: HashMap<Symbol, (ViewDef, View)>,
    options: ViewOptions,
    focus: Focus,
    /// Which databases and views each view's definition reads; kept in
    /// lockstep with `views` so DDL can propagate changes topologically.
    pub(crate) graph: DependencyGraph,
    /// Session-persistent `#n` literal → oid bindings, so interactive
    /// statements can refer to objects declared earlier.
    oid_map: HashMap<u64, Oid>,
    /// This session's execution-engine choice. `None` inherits the process
    /// default ([`ov_query::engine_mode`]); `Some` scopes the choice to this
    /// session's statements via the thread-scoped override, so concurrent
    /// sessions with different `.engine` settings never race on a global.
    engine: Option<ov_query::EngineMode>,
    /// Root directory of a durable session ([`Session::open`]); `None` for
    /// in-memory sessions. Databases live under `<root>/databases/<name>/`,
    /// view definitions in `<root>/views.ovq`.
    durable_root: Option<PathBuf>,
    /// Durability level applied to every database this session opens or
    /// creates. Irrelevant (always `None`) for in-memory sessions.
    durability: Durability,
}

/// File (under the durable root) holding the session's view definitions as
/// a checked DDL script, rewritten atomically after every view-DDL change.
const VIEWS_FILE: &str = "views.ovq";

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session with default view options.
    pub fn new() -> Session {
        Session {
            system: System::new(),
            views: HashMap::new(),
            options: ViewOptions::default(),
            focus: Focus::Nothing,
            graph: DependencyGraph::new(),
            oid_map: HashMap::new(),
            engine: None,
            durable_root: None,
            durability: Durability::None,
        }
    }

    /// Opens (or creates) a durable session rooted at `dir`.
    ///
    /// Recovery order: every subdirectory of `<dir>/databases/` is opened
    /// via [`ov_oodb::Database::open`] (snapshot + WAL replay, in name
    /// order), then `<dir>/views.ovq` — the checked script of view
    /// definitions — is verified and replayed, rebinding each view against
    /// the recovered bases. Imaginary-object identity is restored from the
    /// databases' durable identity tables when the views rebind, so
    /// imaginary oids are stable across open/close cycles.
    ///
    /// `durability` applies to every database the session opens here or
    /// creates later (`database D;` statements create durable databases
    /// under the root).
    pub fn open(dir: &Path, durability: Durability) -> Result<Session> {
        Session::open_with_options(dir, durability, ViewOptions::default())
    }

    /// [`Session::open`] with non-default view options.
    pub fn open_with_options(
        dir: &Path,
        durability: Durability,
        options: ViewOptions,
    ) -> Result<Session> {
        let mut session = Session::with_options(options);
        let dbs_dir = dir.join("databases");
        std::fs::create_dir_all(&dbs_dir)
            .map_err(|e| ViewError::Oodb(OodbError::io("session.open: creating root", e)))?;
        let mut names: Vec<String> = std::fs::read_dir(&dbs_dir)
            .map_err(|e| ViewError::Oodb(OodbError::io("session.open: listing databases", e)))?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                if entry.file_type().ok()?.is_dir() {
                    entry.file_name().into_string().ok()
                } else {
                    None
                }
            })
            .collect();
        names.sort();
        for name in &names {
            let db = ov_oodb::Database::open(sym(name), &dbs_dir.join(name), durability)
                .map_err(ViewError::Oodb)?;
            session.system.add_database(db).map_err(ViewError::Oodb)?;
        }
        match std::fs::read_to_string(dir.join(VIEWS_FILE)) {
            Ok(text) => {
                let script = ov_oodb::read_checked(&text).map_err(ViewError::Oodb)?;
                session.execute(script)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(ViewError::Oodb(OodbError::io(
                    "session.open: reading views.ovq",
                    e,
                )))
            }
        }
        // Replay leaves the prompt wherever the script ended; a freshly
        // opened session starts unfocused, like a freshly created one.
        session.focus = Focus::Nothing;
        session.oid_map.clear();
        session.durable_root = Some(dir.to_path_buf());
        session.durability = durability;
        Ok(session)
    }

    /// The durable root directory, if this session was opened with
    /// [`Session::open`].
    pub fn durable_root(&self) -> Option<&Path> {
        self.durable_root.as_deref()
    }

    /// The durability level this session's databases run at.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Sets this session's execution engine ([`ov_query::EngineMode`]).
    /// `None` reverts to the process default. The choice applies to every
    /// statement and query this session runs — and only to those: it is
    /// installed as a thread-scoped override around each run, so other
    /// sessions (even on other threads) are unaffected.
    pub fn set_engine(&mut self, mode: Option<ov_query::EngineMode>) {
        self.engine = mode;
    }

    /// This session's engine override, if any (`None` = process default).
    pub fn engine(&self) -> Option<ov_query::EngineMode> {
        self.engine
    }

    /// A session with non-default view options (conflict policy etc.).
    pub fn with_options(options: ViewOptions) -> Session {
        Session {
            options,
            ..Session::new()
        }
    }

    /// The typed DDL API over this session's catalog: define and drop
    /// databases, classes, and views with dependency-aware outcomes
    /// (RESTRICT on drops, atomic revalidation on redefinitions). See
    /// [`crate::catalog::CatalogTxn`].
    pub fn catalog(&mut self) -> crate::catalog::CatalogTxn<'_> {
        crate::catalog::CatalogTxn::new(self)
    }

    /// The session's view dependency graph: which databases and which
    /// other views each view's definition reads.
    pub fn dependency_graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// The underlying system (e.g. to register programmatically-built
    /// databases).
    #[deprecated(note = "use `session.catalog()` — raw system mutations bypass \
                         dependency tracking and view revalidation")]
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Read access to the underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The bound view called `name`, if any.
    pub fn view(&self, name: Symbol) -> Option<&View> {
        self.views.get(&name).map(|(_, v)| v)
    }

    /// The DDL text of view `name`'s current definition (see
    /// [`ViewDef::to_script`]).
    pub fn view_script(&self, name: Symbol) -> Option<String> {
        self.views.get(&name).map(|(def, _)| def.to_script())
    }

    /// Names of all defined views, sorted.
    pub fn view_names(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.views.keys().copied().collect();
        v.sort();
        v
    }

    /// Switches the prompt to database or view `name` (used by the REPL's
    /// `use` handling and by tests).
    pub fn focus(&mut self, name: Symbol) -> Result<Outcome> {
        if self.views.contains_key(&name) {
            self.focus = Focus::View(name);
            return Ok(Outcome::Notice(format!("focused on view {name}")));
        }
        if self.system.database(name).is_ok() {
            self.focus = Focus::Database(name);
            return Ok(Outcome::Notice(format!("focused on database {name}")));
        }
        Err(ViewError::Definition(format!(
            "`{name}` is neither a database nor a view in this session"
        )))
    }

    /// Parses and executes a script, one statement at a time. Returns one
    /// outcome per statement; stops at the first error.
    pub fn execute(&mut self, src: &str) -> Result<Vec<Outcome>> {
        let stmts = parse_program(src).map_err(ViewError::from)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute_stmt(stmt)?);
        }
        Ok(out)
    }

    /// Executes a single pre-parsed statement.
    pub fn execute_stmt(&mut self, stmt: Stmt) -> Result<Outcome> {
        let _span = ov_oodb::span!("session.execute_stmt");
        match stmt {
            Stmt::Database(name) => {
                if self.system.database(name).is_err() {
                    match &self.durable_root {
                        // Durable sessions create durable databases: an
                        // empty directory under the root, opened with the
                        // session's durability so every write WAL-logs.
                        Some(root) => {
                            let dir = root.join("databases").join(name.to_string());
                            let db = ov_oodb::Database::open(name, &dir, self.durability)
                                .map_err(ViewError::Oodb)?;
                            self.system.add_database(db).map_err(ViewError::Oodb)?;
                        }
                        None => {
                            self.system.create_database(name)?;
                        }
                    }
                }
                self.focus = Focus::Database(name);
                Ok(Outcome::Notice(format!("database {name}")))
            }
            Stmt::CreateView(name) => {
                if self.views.contains_key(&name) {
                    return Err(ViewError::Definition(format!(
                        "view `{name}` already exists in this session"
                    )));
                }
                let def = ViewDef::new(name);
                let view = self.bind_def(&def)?;
                self.install_view(def, view);
                self.focus = Focus::View(name);
                Ok(Outcome::Notice(format!("view {name}")))
            }
            Stmt::Import { what, db } => self.extend_view(|def| {
                def.imports.push(Import { db, what });
            }),
            Stmt::HideAttrs { attrs, class } => self.extend_view(move |def| {
                def.elements
                    .push(ViewElement::Hide(Hide::Attrs { attrs, class }));
            }),
            Stmt::HideClass(class) => self.extend_view(move |def| {
                def.elements.push(ViewElement::Hide(Hide::Class(class)));
            }),
            Stmt::VirtualClassDecl {
                name,
                params,
                includes,
            } => self.extend_view(move |def| {
                def.elements
                    .push(ViewElement::VirtualClass(VirtualClassDef {
                        name,
                        params,
                        includes,
                    }));
            }),
            Stmt::AttributeDecl {
                name,
                params,
                ty,
                class,
                body,
            } => match self.focus {
                Focus::View(_) => self.extend_view(move |def| {
                    def.elements.push(ViewElement::Attribute(AttrDecl {
                        name,
                        params,
                        ty,
                        class,
                        body,
                    }));
                }),
                Focus::Database(db) => {
                    // Attribute declarations are valid base-schema DDL too.
                    self.run_on_database(
                        db,
                        Stmt::AttributeDecl {
                            name,
                            params,
                            ty,
                            class,
                            body,
                        },
                    )
                }
                Focus::Nothing => Err(no_focus()),
            },
            // Data statements and queries dispatch on focus, under the
            // session's engine override (if any).
            other => {
                let engine = self.engine;
                under_engine(engine, || match self.focus {
                    Focus::Database(db) => self.run_on_database(db, other),
                    Focus::View(vname) => self.run_on_view(vname, other),
                    Focus::Nothing => Err(no_focus()),
                })
            }
        }
    }

    /// Applies `patch` to the focused view's definition and rebinds it;
    /// a failing statement is rolled back so the session view stays usable.
    fn extend_view(&mut self, patch: impl FnOnce(&mut ViewDef)) -> Result<Outcome> {
        let Focus::View(name) = self.focus else {
            return Err(ViewError::Definition(
                "view-definition statements need a focused view (`create view V;` first)".into(),
            ));
        };
        // Unreachable expect: `focus` is only ever set to a key of
        // `views`, and entries are never removed through this path.
        let (def, _) = self.views.get(&name).expect("focused view exists");
        let mut candidate = def.clone();
        patch(&mut candidate);
        let _span = ov_oodb::span!("session.rebind_view", view = name);
        self.replace_view_def(candidate)?;
        Ok(Outcome::Done)
    }

    /// Binds `def` against the session's system with every *other*
    /// session view available as an upstream (so `import all classes from
    /// V` resolves and views can stack).
    pub(crate) fn bind_def(&self, def: &ViewDef) -> Result<View> {
        let mut binder = def.binder(&self.system).options(self.options.clone());
        for (n, (d, _)) in &self.views {
            if *n != def.name {
                binder = binder.over(d);
            }
        }
        binder.bind()
    }

    /// Registers a freshly bound view and its dependency edges.
    pub(crate) fn install_view(&mut self, def: ViewDef, view: View) {
        let name = def.name;
        self.graph.set(name, view.dependencies().to_vec());
        self.views.insert(name, (def, view));
        self.persist_views_best_effort();
    }

    /// Removes `name` from the session (views map, dependency graph, and
    /// focus if it was focused). Callers enforce RESTRICT first.
    pub(crate) fn remove_view(&mut self, name: Symbol) {
        self.views.remove(&name);
        self.graph.remove(name);
        if self.focus == Focus::View(name) {
            self.focus = Focus::Nothing;
        }
        self.persist_views_best_effort();
    }

    /// Replaces (or introduces) a view definition, then atomically
    /// revalidates every transitive dependent: either the new definition
    /// *and* all rebound dependents are committed, or the session is left
    /// exactly as it was. Returns the number of dependents revalidated.
    pub(crate) fn replace_view_def(&mut self, candidate: ViewDef) -> Result<usize> {
        let name = candidate.name;
        let view = self.bind_def(&candidate)?;
        let old = self.views.insert(name, (candidate, view));
        let old_edges = self.graph.deps_of(name).map(<[_]>::to_vec);
        let new_edges = self.views[&name].1.dependencies().to_vec();
        self.graph.set(name, new_edges);
        match self.rebind_dependents(DepTarget::View(name), name) {
            Ok(n) => {
                self.persist_views_best_effort();
                Ok(n)
            }
            Err(e) => {
                // Roll back: restore the previous entry and edges.
                match old {
                    Some(entry) => {
                        self.views.insert(name, entry);
                    }
                    None => {
                        self.views.remove(&name);
                    }
                }
                match old_edges {
                    Some(edges) => self.graph.set(name, edges),
                    None => self.graph.remove(name),
                }
                Err(e)
            }
        }
    }

    /// Rebinds every transitive dependent of `target`, in topological
    /// order. All rebinds are staged before any is committed, so a failure
    /// leaves every dependent untouched; the error names the dependent
    /// that failed and the change (`changed`) that triggered revalidation.
    pub(crate) fn rebind_dependents(
        &mut self,
        target: DepTarget,
        changed: Symbol,
    ) -> Result<usize> {
        let order = self.graph.transitive_dependents(target);
        if order.is_empty() {
            return Ok(0);
        }
        let _span = ov_oodb::span!("session.rebind_dependents");
        let mut staged: Vec<(Symbol, View)> = Vec::new();
        for &name in &order {
            let (def, _) = self.views.get(&name).expect("graph tracks session views");
            let def = def.clone();
            // `bind_def` is a *full* rebind: it re-runs bind-time predicate
            // compilation, so each staged dependent's
            // `VirtualInfo::compiled` bytecode is rebuilt against the new
            // upstream definitions — a dependent never keeps stale compiled
            // programs after a redefinition commits (regression-tested in
            // `redefining_an_upstream_view_recompiles_dependents`).
            let view = self
                .bind_def(&def)
                .map_err(|e| ViewError::RevalidationFailed {
                    changed,
                    dependent: name,
                    cause: Box::new(e),
                })?;
            staged.push((name, view));
        }
        let n = staged.len();
        for (name, view) in staged {
            self.graph.set(name, view.dependencies().to_vec());
            if let Some(entry) = self.views.get_mut(&name) {
                entry.1 = view;
            }
        }
        Ok(n)
    }

    fn run_on_database(&mut self, db: Symbol, stmt: Stmt) -> Result<Outcome> {
        // Reuse the script executor with an explicit database context; the
        // session-persistent oid map keeps `#n` bindings across statements.
        let stmts = vec![Stmt::Database(db), stmt];
        let schema_change = matches!(
            stmts[1],
            Stmt::ClassDecl { .. } | Stmt::AttributeDecl { .. }
        );
        let results = execute_stmts_with_map(&mut self.system, &stmts, &mut self.oid_map)
            .map_err(ViewError::from)?;
        if schema_change {
            // Schema changes revalidate — but only the transitive
            // dependents of the changed database, in dependency order.
            // Unrelated views keep their bound state and warm caches.
            self.rebind_dependents(DepTarget::Database(db), db)?;
        } else if self.options.materialization == Materialization::Incremental {
            // Data writes under incremental materialization are pushed
            // eagerly through the stack so reads find warm populations.
            self.propagate(db);
        }
        Ok(match results.into_iter().next() {
            Some(v) => Outcome::Value(v),
            None => Outcome::Done,
        })
    }

    /// Runs pre-validated DDL statements against database `db` (catalog
    /// path; callers revalidate dependents afterwards).
    pub(crate) fn apply_ddl(&mut self, db: Symbol, stmts: Vec<Stmt>) -> Result<()> {
        let mut program = Vec::with_capacity(stmts.len() + 1);
        program.push(Stmt::Database(db));
        program.extend(stmts);
        execute_stmts_with_map(&mut self.system, &program, &mut self.oid_map)
            .map_err(ViewError::from)?;
        Ok(())
    }

    /// Pushes a base write through the dependency graph: refreshes the
    /// populations of every transitive dependent of database `db`, in
    /// topological order (upstream views before the views stacked on
    /// them). Under [`Materialization::Incremental`] each refresh is a
    /// delta retest of the journal's changed oids. Failures are skipped —
    /// the lazy read path (with its degradation ladder) recovers on next
    /// access. Returns the number of views refreshed.
    pub fn propagate(&self, db: Symbol) -> usize {
        let mut refreshed = 0;
        for name in self.graph.transitive_dependents(DepTarget::Database(db)) {
            if let Some((_, view)) = self.views.get(&name) {
                if view.refresh().is_ok() {
                    refreshed += 1;
                }
            }
        }
        refreshed
    }

    fn run_on_view(&mut self, vname: Symbol, stmt: Stmt) -> Result<Outcome> {
        let (_, view) = self.views.get(&vname).expect("focused view exists");
        match stmt {
            Stmt::Query(e) => {
                // `run_expr`, not `eval_expr`: a canonical class scan on the
                // focused view takes the compiled engine, same as
                // `Session::query` and the database path.
                let v = ov_query::run_expr(view, &e).map_err(ViewError::from)?;
                Ok(Outcome::Value(v))
            }
            Stmt::Insert { class, value } => {
                let v = ov_query::eval_expr(view, &value).map_err(ViewError::from)?;
                let oid = view.insert(class, v)?;
                Ok(Outcome::Value(Value::Oid(oid)))
            }
            Stmt::SetAttr {
                target,
                attr,
                value,
            } => {
                let t = ov_query::eval_expr(view, &target).map_err(ViewError::from)?;
                let Value::Oid(oid) = t else {
                    return Err(ViewError::Definition(
                        "`set` target must evaluate to an object".into(),
                    ));
                };
                let v = ov_query::eval_expr(view, &value).map_err(ViewError::from)?;
                view.update_attr(oid, attr, v)?;
                Ok(Outcome::Done)
            }
            Stmt::Delete(e) => {
                let t = ov_query::eval_expr(view, &e).map_err(ViewError::from)?;
                let Value::Oid(oid) = t else {
                    return Err(ViewError::Definition(
                        "`delete` target must evaluate to an object".into(),
                    ));
                };
                view.delete(oid)?;
                Ok(Outcome::Done)
            }
            Stmt::ObjectDecl { .. } | Stmt::NameDecl { .. } | Stmt::ClassDecl { .. } => {
                Err(ViewError::Definition(
                    "base-data statements need a focused database, not a view".into(),
                ))
            }
            _ => unreachable!("handled by execute_stmt"),
        }
    }

    /// Serializes the whole session — every database (schema + data) and
    /// every view definition — as one script that [`Session::execute`] (or
    /// the `ovq` shell) replays into an equivalent session. View
    /// definitions are emitted in dependency order, so a view stacked on
    /// another view restores after the views it imports. Imaginary
    /// identity tables are *not* part of the saved state: they repopulate
    /// deterministically on first use in the restored session.
    pub fn save(&self) -> String {
        let mut out = String::new();
        let mut offset = 0u64;
        for db_name in self.system.names() {
            let db = self.system.database(db_name).expect("listed");
            let db = db.read();
            out.push_str(&ov_oodb::dump_database_with_offset(&db, offset));
            offset += db.store.len() as u64;
        }
        for vname in self.graph.topo_order(self.view_names()) {
            let (def, _) = &self.views[&vname];
            out.push_str(&def.to_script());
        }
        out
    }

    /// Rewrites `<root>/views.ovq` — the checked script of every view
    /// definition, in dependency order — atomically (temp file, fsync,
    /// rename). A no-op for in-memory sessions.
    pub fn persist_views(&self) -> Result<()> {
        let Some(root) = &self.durable_root else {
            return Ok(());
        };
        let mut script = String::new();
        for vname in self.graph.topo_order(self.view_names()) {
            script.push_str(&self.views[&vname].0.to_script());
        }
        let text = ov_oodb::wrap_checked(&script);
        let write = || -> std::io::Result<()> {
            use std::io::Write as _;
            let tmp = root.join("views.ovq.tmp");
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, root.join(VIEWS_FILE))?;
            if let Ok(d) = std::fs::File::open(root) {
                let _ = d.sync_all();
            }
            Ok(())
        };
        write().map_err(|e| ViewError::Oodb(OodbError::io("session: persisting views.ovq", e)))
    }

    /// [`Session::persist_views`], degrading on failure: view DDL already
    /// committed in memory stays committed; the miss is counted
    /// (`session.views_persist_failures`) and the next successful rewrite
    /// or [`Session::checkpoint`] heals the file.
    fn persist_views_best_effort(&self) {
        if self.persist_views().is_err() {
            ov_oodb::metric_counter!("session.views_persist_failures").inc();
        }
    }

    /// Checkpoints every durable database (snapshot + WAL truncation) and
    /// strictly rewrites `views.ovq`. Returns the number of databases
    /// checkpointed. Errors if any checkpoint or the view rewrite fails;
    /// an error leaves earlier checkpoints in place (they are independent).
    pub fn checkpoint(&self) -> Result<usize> {
        let mut n = 0;
        for db_name in self.system.names() {
            let db = self.system.database(db_name).expect("listed");
            let db = db.read();
            if db.durable_core().is_some() {
                db.checkpoint().map_err(ViewError::Oodb)?;
                n += 1;
            }
        }
        self.persist_views()?;
        Ok(n)
    }

    /// Per-database WAL status (durable databases only, in name order) —
    /// behind the `ovq` shell's `.wal` command.
    pub fn wal_status(&self) -> Vec<(Symbol, WalStatus)> {
        let mut out = Vec::new();
        for db_name in self.system.names() {
            let db = self.system.database(db_name).expect("listed");
            let db = db.read();
            if let Some(core) = db.durable_core() {
                out.push((db_name, core.status()));
            }
        }
        out
    }

    /// A short description of what's in the session (for the REPL's
    /// `.schema`): databases with their classes, then views with their
    /// classes, dependency edges, and health.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for db_name in self.system.names() {
            let db = self.system.database(db_name).expect("listed");
            let db = db.read();
            let _ = writeln!(
                out,
                "database {db_name}: {} classes, {} objects",
                db.schema.len(),
                db.store.len()
            );
            for class in db.schema.classes() {
                let _ = writeln!(
                    out,
                    "  class {} ({} objects)",
                    class.name,
                    db.store.extent_len(class.id)
                );
            }
        }
        for vname in self.view_names() {
            let (_, view) = &self.views[&vname];
            let _ = writeln!(out, "view {vname}: classes {:?}", view.class_names());
            for edge in view.dependencies() {
                if edge.classes.is_empty() {
                    let _ = writeln!(out, "  depends on {}", edge.on);
                } else {
                    let reads: Vec<String> = edge.classes.iter().map(|c| c.to_string()).collect();
                    let _ = writeln!(out, "  depends on {} (reads {})", edge.on, reads.join(", "));
                }
            }
            let _ = writeln!(out, "  health: {}", view.health());
        }
        out
    }
}

/// Runs `f` under `engine` when the session has an override, plain
/// otherwise. A free function (not a method) so callers can pass `&mut
/// self` closures without a borrow conflict.
fn under_engine<R>(engine: Option<ov_query::EngineMode>, f: impl FnOnce() -> R) -> R {
    match engine {
        Some(mode) => ov_query::with_engine_mode(mode, f),
        None => f(),
    }
}

fn no_focus() -> ViewError {
    ViewError::Definition(
        "no focused database or view (start with `database D;` or `create view V;`)".into(),
    )
}

// DataSource passthrough so a session's focused view can be queried
// through generic code paths if desired.
impl Session {
    /// Runs a query against a named view or database (under the session's
    /// engine override, if any).
    pub fn query(&self, target: Symbol, query: &str) -> Result<Value> {
        under_engine(self.engine, || {
            if let Some((_, view)) = self.views.get(&target) {
                return view.query(query);
            }
            let db = self.system.database(target)?;
            let db = db.read();
            ov_query::run_query(&*db, query).map_err(ViewError::from)
        })
    }

    /// Explains a query against a named view or database: the parsed form,
    /// the statically inferred type, and the optimized form. Drives the
    /// REPL's `.explain`.
    pub fn explain(&self, target: Symbol, query: &str) -> Result<String> {
        use std::fmt::Write as _;
        let expr = ov_query::parse_expr(query).map_err(ViewError::from)?;
        let mut out = String::new();
        let _ = writeln!(out, "parsed:    {expr}");
        let ty = if let Some((_, view)) = self.views.get(&target) {
            ov_query::infer_expr(view, &expr)
        } else {
            let db = self.system.database(target)?;
            let db = db.read();
            ov_query::infer_expr(&*db, &expr)
        };
        match ty {
            Ok(t) => {
                let _ = writeln!(out, "type:      {t:?}");
            }
            Err(e) => {
                let _ = writeln!(out, "type:      error: {e}");
            }
        }
        let optimized = ov_query::optimize_expr(&expr);
        if optimized != expr {
            let _ = writeln!(out, "optimized: {optimized}");
        } else {
            let _ = writeln!(out, "optimized: (unchanged)");
        }
        // For a view target, surface its place in the dependency graph.
        if let Some((_, view)) = self.views.get(&target) {
            if !view.dependencies().is_empty() {
                let deps: Vec<String> = view
                    .dependencies()
                    .iter()
                    .map(|e| e.on.to_string())
                    .collect();
                let _ = writeln!(out, "depends:   {}", deps.join("; "));
            }
        }
        // Execute with tracing: per-stage timings plus, for every
        // population request, which path resolved it (cache hit / delta /
        // full recompute with its scans). Same rendering as
        // `View::explain`.
        let traced = if let Some((_, view)) = self.views.get(&target) {
            under_engine(self.engine, || ov_query::run_query_traced(view, query))
        } else {
            let db = self.system.database(target)?;
            let db = db.read();
            under_engine(self.engine, || ov_query::run_query_traced(&*db, query))
        };
        match traced {
            Ok((_, trace)) => {
                let _ = write!(out, "{trace}");
            }
            Err(e) => {
                let _ = writeln!(out, "execution: error: {e}");
            }
        }
        Ok(out)
    }

    /// EXPLAIN ANALYZE: executes `query` with the actuals collector armed
    /// and returns the annotated trace — per-stage timings, per-population
    /// scan events with their measured counters, the query-level actuals
    /// roll-up, engine, and fingerprint — followed by the result value.
    /// `.explain` without the static prelude; drives the REPL's `.analyze`.
    pub fn analyze(&self, target: Symbol, query: &str) -> Result<String> {
        let traced = if let Some((_, view)) = self.views.get(&target) {
            under_engine(self.engine, || ov_query::run_query_traced(view, query))
        } else {
            let db = self.system.database(target)?;
            let db = db.read();
            under_engine(self.engine, || ov_query::run_query_traced(&*db, query))
        };
        let (value, trace) = traced.map_err(ViewError::from)?;
        Ok(format!("{trace}result: {value}\n"))
    }

    /// Explains how the population of virtual class `class` of view `view`
    /// is resolved right now (see `View::explain_population`), rendered as
    /// one line.
    pub fn explain_population(&self, view: Symbol, class: Symbol) -> Result<String> {
        let (_, v) = self
            .views
            .get(&view)
            .ok_or(ViewError::Oodb(ov_oodb::OodbError::UnknownDatabase(view)))?;
        // The explain may trigger the population recompute it then reports,
        // so it must run under the session's engine like any other read.
        under_engine(self.engine, || {
            Ok(format!("{}\n", v.explain_population(class)?))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    fn loaded_session() -> Session {
        let mut s = Session::new();
        s.execute(
            r#"
            database Staff;
            class Person type [Name: string, Age: integer];
            class Employee inherits Person type [Salary: integer];
            object #1 in Person value [Name: "Maggy", Age: 66];
            object #2 in Employee value [Name: "Tony", Age: 30, Salary: 50000];
            name maggy = #1;
            "#,
        )
        .unwrap();
        s
    }

    #[test]
    fn database_then_view_then_query() {
        let mut s = loaded_session();
        let outcomes = s
            .execute(
                r#"
                create view V;
                import all classes from database Staff;
                class Adult includes (select P from Person where P.Age >= 21);
                select A.Name from A in Adult;
                "#,
            )
            .unwrap();
        assert_eq!(
            outcomes.last().unwrap(),
            &Outcome::Value(Value::set([Value::str("Maggy"), Value::str("Tony")]))
        );
    }

    #[test]
    fn incremental_view_definition_rebinds() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        // First query: no Adult yet.
        assert!(s.execute("select A from A in Adult;").is_err());
        // Add the class, query again.
        s.execute("class Adult includes (select P from Person where P.Age >= 21);")
            .unwrap();
        let v = s.execute("count((select A from A in Adult));").unwrap();
        assert_eq!(v[0], Outcome::Value(Value::Int(2)));
    }

    #[test]
    fn failing_view_statement_rolls_back() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        // A bad virtual class must not poison the session.
        assert!(s
            .execute("class Bad includes (select [X: P.Name] from P in Person);")
            .is_err());
        let v = s.execute("count(Person);").unwrap();
        assert_eq!(v[0], Outcome::Value(Value::Int(2)));
        // And the definition no longer contains the failed statement.
        s.execute("class Adult includes (select P from Person where P.Age >= 21);")
            .unwrap();
    }

    #[test]
    fn focus_switching() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        // Switch back to the database and mutate it.
        s.focus(sym("Staff")).unwrap();
        s.execute(r#"insert Person value [Name: "New", Age: 50];"#)
            .unwrap();
        // The view sees the new person.
        s.focus(sym("V")).unwrap();
        let v = s.execute("count(Person);").unwrap();
        assert_eq!(v[0], Outcome::Value(Value::Int(3)));
    }

    #[test]
    fn updates_through_focused_view() {
        let mut s = loaded_session();
        s.execute(
            "create view V; import all classes from database Staff; \
             hide attribute Salary in class Employee;",
        )
        .unwrap();
        s.execute("set maggy.Age = 67;").unwrap();
        let v = s.execute("maggy.Age;").unwrap();
        assert_eq!(v[0], Outcome::Value(Value::Int(67)));
        // Hidden attributes reject assignment through the view.
        assert!(s.execute(r#"set maggy.Salary = 1;"#).is_err());
    }

    #[test]
    fn base_schema_changes_rebind_views() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        s.focus(sym("Staff")).unwrap();
        s.execute("attribute Doubled in class Person has value self.Age * 2;")
            .unwrap();
        s.focus(sym("V")).unwrap();
        let v = s.execute("maggy.Doubled;").unwrap();
        assert_eq!(v[0], Outcome::Value(Value::Int(132)));
    }

    #[test]
    fn statements_need_focus() {
        let mut s = Session::new();
        assert!(s.execute("select 1 from X in {1};").is_err());
        assert!(s.execute("class C type [X: integer];").is_err());
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut s = loaded_session();
        s.execute("create view V;").unwrap();
        assert!(s.execute("create view V;").is_err());
    }

    #[test]
    fn describe_lists_everything() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        let d = s.describe();
        assert!(d.contains("database Staff"));
        assert!(d.contains("class Person"));
        assert!(d.contains("view V"));
    }

    #[test]
    fn explain_reports_type_and_optimization() {
        let mut s = loaded_session();
        s.execute(
            "create view V; import all classes from database Staff; \
             class Adult includes (select P from Person where P.Age >= 21);",
        )
        .unwrap();
        let e = s
            .explain(sym("V"), "select A.Name from A in Adult")
            .unwrap();
        assert!(e.contains("type:      {string}"), "got: {e}");
        let e = s.explain(sym("V"), "1 + 2 * 3").unwrap();
        assert!(e.contains("optimized: 7"), "got: {e}");
        let e = s.explain(sym("Staff"), "maggy.Ghost").unwrap();
        assert!(e.contains("type:      error"), "got: {e}");
        // Execution failures are reported, not fatal.
        assert!(e.contains("execution: error"), "got: {e}");
    }

    #[test]
    fn explain_renders_population_plans() {
        let mut s = loaded_session();
        s.execute(
            "create view V; import all classes from database Staff; \
             class Adult includes (select P from Person where P.Age >= 21);",
        )
        .unwrap();
        // Cold: the trace shows the executed stages and the recompute path.
        let e = s
            .explain(sym("V"), "select A.Name from A in Adult")
            .unwrap();
        assert!(e.contains("execute"), "got: {e}");
        assert!(e.contains("population Adult: FullRecompute"), "got: {e}");
        // Warm: same query now reports the cache hit — the exact rendering
        // `View::explain` produces, surfaced through `.explain` in ovq.
        let e = s
            .explain(sym("V"), "select A.Name from A in Adult")
            .unwrap();
        assert!(e.contains("population Adult: CacheHit"), "got: {e}");
        assert!(e.contains("rows: "), "got: {e}");
        // And `.plan` renders a single population line.
        let p = s.explain_population(sym("V"), sym("Adult")).unwrap();
        assert!(p.starts_with("population Adult: CacheHit"), "got: {p}");
    }

    #[test]
    fn save_and_restore_a_whole_session() {
        let mut s = loaded_session();
        s.execute(
            r#"
            database Extra;
            class Thing type [Label: string];
            -- Session-persistent `#k` literals are global to the session,
            -- so this must not reuse Staff's #1/#2.
            object #10 in Thing value [Label: "t"];
            "#,
        )
        .unwrap();
        s.execute(
            "create view V; import all classes from database Staff;              class Adult includes (select P from Person where P.Age >= 21);",
        )
        .unwrap();
        let script = s.save();
        // Restore into a brand-new session.
        let mut restored = Session::new();
        restored.execute(&script).unwrap_or_else(|e| {
            panic!(
                "restore failed: {e}
{script}"
            )
        });
        assert_eq!(
            restored.query(sym("V"), "count(Adult)").unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            restored.query(sym("Staff"), "maggy.Age").unwrap(),
            Value::Int(66)
        );
        assert_eq!(
            restored.query(sym("Extra"), "count(Thing)").unwrap(),
            Value::Int(1)
        );
        // Saving the restored session reproduces the same script (fixpoint).
        assert_eq!(restored.save(), script);
    }

    /// Satellite regression (engine-mode scoping): two sessions on two
    /// threads with *different* engine overrides run concurrently; each
    /// session's scans use its own engine (visible in the EXPLAIN scan
    /// markers) and the process default is untouched afterwards.
    #[test]
    fn concurrent_sessions_scope_their_engine_modes() {
        let default_before = ov_query::engine_mode();
        let run = |mode: ov_query::EngineMode, marker: &str| {
            // AlwaysRecompute so every explain records a fresh scan.
            let mut s = Session::with_options(
                ViewOptions::builder()
                    .materialization(Materialization::AlwaysRecompute)
                    .build(),
            );
            s.execute(
                r#"
                database Staff;
                class Person type [Name: string, Age: integer];
                object #1 in Person value [Name: "Maggy", Age: 66];
                create view V;
                import all classes from database Staff;
                class Adult includes (select P from Person where P.Age >= 21);
                "#,
            )
            .unwrap();
            s.set_engine(Some(mode));
            for _ in 0..20 {
                assert_eq!(s.query(sym("V"), "count(Adult)").unwrap(), Value::Int(1));
                let e = s.explain(sym("V"), "count(Adult)").unwrap();
                assert!(e.contains(marker), "mode {mode:?}: got {e}");
            }
        };
        std::thread::scope(|scope| {
            scope.spawn(|| run(ov_query::EngineMode::Compiled, "[seq compiled b="));
            scope.spawn(|| run(ov_query::EngineMode::Interp, "[seq]"));
        });
        assert_eq!(ov_query::engine_mode(), default_before);
    }

    /// Satellite regression (stale compiled bytecode): redefining an
    /// upstream view must recompile the *dependent's* membership programs,
    /// not leave them pointing at the old definition's bytecode.
    #[test]
    fn redefining_an_upstream_view_recompiles_dependents() {
        let mut s = loaded_session();
        // A (Adult: Age >= 21) feeds B (Named: a virtual class over A's
        // Adult). Both predicates are in the compiler's covered subset.
        s.execute(
            "create view A; import all classes from database Staff; \
             class Adult includes (select P from Person where P.Age >= 21);",
        )
        .unwrap();
        s.execute(
            "create view B; import all classes from view A; \
             class Senior includes (select X from Adult where X.Age >= 21);",
        )
        .unwrap();
        assert_eq!(s.query(sym("B"), "count(Senior)").unwrap(), Value::Int(2));
        // Redefine A through the catalog: Adult's threshold moves 21 → 60.
        // Binding B *expanded* A's definition into B's own schema, so B
        // holds its own compiled program for the spliced Adult filter — a
        // stale one would still admit Tony (30).
        let mut def = s.views[&sym("A")].0.clone();
        for el in &mut def.elements {
            if let ViewElement::VirtualClass(vc) = el {
                vc.includes = vec![ov_query::IncludeSpec::Query(
                    ov_query::parse_select("select P from Person where P.Age >= 60").unwrap(),
                )];
            }
        }
        s.catalog().redefine_view(def).unwrap();
        assert_eq!(s.query(sym("A"), "count(Adult)").unwrap(), Value::Int(1));
        assert_eq!(s.query(sym("B"), "count(Senior)").unwrap(), Value::Int(1));
    }

    /// Satellite regression (resolution-cache staleness): a compiled scan
    /// warmed before a mid-session `hide` must not serve the stale
    /// resolution afterwards. (The within-one-`View` half — warm slot
    /// caches across population brackets — is covered by the resolution
    /// generation counter; see `View::res_gen` and the
    /// `generation_bump_invalidates_warm_slot_caches` test in `ov-query`.)
    #[test]
    fn hide_then_rescan_does_not_serve_stale_resolution() {
        let mut s = loaded_session();
        s.execute("create view V; import all classes from database Staff;")
            .unwrap();
        // Warm the compiled scan path over Employee.Salary.
        assert_eq!(
            s.query(sym("V"), "select E.Salary from E in Employee")
                .unwrap(),
            Value::set([Value::Int(50000)])
        );
        // Hide it mid-session, then rescan the exact same query.
        s.focus(sym("V")).unwrap();
        s.execute("hide attribute Salary in class Employee;")
            .unwrap();
        let after = s.query(sym("V"), "select E.Salary from E in Employee");
        assert!(
            after.is_err(),
            "hidden attribute must not resolve from a warm cache: {after:?}"
        );
    }

    #[test]
    fn query_by_target_name() {
        let mut s = loaded_session();
        s.execute(
            "create view V; import all classes from database Staff; \
             class Adult includes (select P from Person where P.Age >= 21);",
        )
        .unwrap();
        assert_eq!(s.query(sym("V"), "count(Adult)").unwrap(), Value::Int(2));
        assert_eq!(
            s.query(sym("Staff"), "count(Person)").unwrap(),
            Value::Int(2)
        );
    }
}
