//! # ov-views — the view mechanism of *Objects and Views* (SIGMOD 1991)
//!
//! This crate is the paper's contribution: a view mechanism for
//! object-oriented databases. A view is defined by a [`ViewDef`] — imports,
//! hides, virtual attributes, virtual classes — and bound against a
//! [`ov_oodb::System`] to produce a [`View`], which implements
//! [`ov_query::DataSource`] and is therefore queryable exactly like a
//! database.
//!
//! Feature map (paper section → API):
//!
//! | Paper | Here |
//! |---|---|
//! | §2 virtual attributes, overloading | [`ViewDef::virtual_attr`], `attribute … has value …` |
//! | §3 import / hide | [`ViewDef::import_all`], [`ViewDef::hide_attr`], [`ViewDef::hide_class`] |
//! | §4.1 specialization / generalization / behavioral | `class C includes …` with queries, class names, `like B` |
//! | §4.1 parameterized classes | `class C(X) includes …`, [`View::instantiate`] |
//! | §4.2 hierarchy inference (R1/R2) | [`infer::infer_position`] |
//! | §4.3 upward inheritance, schizophrenia | [`infer::upward_attrs`], [`ov_oodb::ConflictPolicy`] |
//! | §5 imaginary objects | `class C includes imaginary (select …)` |
//! | §5.1 identity tables | [`IdentityMode::Table`] (and the naive [`IdentityMode::Fresh`] baseline) |
//!
//! ## Quick taste
//!
//! ```
//! use ov_oodb::{System, sym, Value};
//! use ov_query::execute_script;
//! use ov_views::ViewDef;
//!
//! let mut sys = System::new();
//! execute_script(&mut sys, r#"
//!     database People;
//!     class Person type [Name: string, Age: integer];
//!     object #1 in Person value [Name: "Maggy", Age: 65];
//!     object #2 in Person value [Name: "Bart", Age: 10];
//! "#).unwrap();
//!
//! let view = ViewDef::from_script(r#"
//!     create view Grown_Ups;
//!     import all classes from database People;
//!     class Adult includes (select P from Person where P.Age >= 21);
//! "#).unwrap().binder(&sys).bind().unwrap();
//!
//! let names = view.query("select A.Name from A in Adult").unwrap();
//! assert_eq!(names, Value::set([Value::str("Maggy")]));
//! ```

#![warn(missing_docs)]

#[deny(missing_docs)]
pub mod catalog;
pub mod def;
pub mod error;
#[deny(missing_docs)]
pub mod graph;
pub mod infer;
pub mod materialize;
pub mod session;
pub mod view;

pub use catalog::{CatalogTxn, DdlOutcome};
pub use def::{AttrDecl, Hide, Import, ViewDef, ViewElement, VirtualClassDef};
pub use error::{Result, ViewError};
pub use graph::{DepEdge, DepTarget, DependencyGraph};
pub use ov_query::ParallelConfig;
pub use session::{Outcome, Session};
pub use view::{
    Binder, IdentityMode, Materialization, Population, View, ViewHealth, ViewOptions,
    ViewOptionsBuilder, ViewStats,
};

#[cfg(test)]
mod tests;
