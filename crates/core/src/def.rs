//! View definitions.
//!
//! A [`ViewDef`] is the *unbound* form of a view: the paper's
//!
//! ```text
//! create view My_View;
//! { import and hide specifications }
//! { class and method definitions }
//! { hide specifications }
//! ```
//!
//! (§3). It can be written programmatically through the builder methods or
//! parsed from the textual DDL with [`ViewDef::from_script`]. Binding it
//! against a [`ov_oodb::System`] produces a queryable
//! [`crate::View`].

use std::fmt::Write as _;

use ov_oodb::{Expr, Symbol};
use ov_query::{parse_program, ImportWhat, IncludeSpec, Stmt, TypeExpr};

use crate::error::{Result, ViewError};

/// One import specification (§3).
#[derive(Clone, PartialEq, Debug)]
pub struct Import {
    /// Source database name.
    pub db: Symbol,
    /// All classes, or one class (with its subclasses).
    pub what: ImportWhat,
}

/// One hide specification (§3).
#[derive(Clone, PartialEq, Debug)]
pub enum Hide {
    /// `hide attribute A in class C` — hides the definitions of `A` in `C`
    /// **and all its subclasses**.
    Attrs {
        /// The attributes to hide.
        attrs: Vec<Symbol>,
        /// The class at (and below) which they are hidden.
        class: Symbol,
    },
    /// `hide class C` — removes `C` (and its proper subtree) from the
    /// view's name space.
    Class(Symbol),
}

/// A virtual class declaration (§4/§5).
#[derive(Clone, PartialEq, Debug)]
pub struct VirtualClassDef {
    /// The virtual class's name.
    pub name: Symbol,
    /// Non-empty for parameterized classes (`class Adult(A) includes …`).
    pub params: Vec<Symbol>,
    /// The population includes (§4.1/§5).
    pub includes: Vec<IncludeSpec>,
}

/// An attribute declaration inside a view (§2): virtual attributes,
/// overloading, methods.
#[derive(Clone, PartialEq, Debug)]
pub struct AttrDecl {
    /// The attribute's name.
    pub name: Symbol,
    /// Parameters (methods), usually empty.
    pub params: Vec<(Symbol, TypeExpr)>,
    /// Declared type; inferred when absent.
    pub ty: Option<TypeExpr>,
    /// The class the attribute is (re)defined in.
    pub class: Symbol,
    /// `has value` body; a bodiless declaration re-declares the attribute
    /// as stored (only meaningful on imported classes that store it).
    pub body: Option<Expr>,
}

/// Ordered view elements after the import section. Order matters: a virtual
/// class may be defined over classes (virtual or imported) declared before
/// it, and hides apply from their position on.
#[derive(Clone, PartialEq, Debug)]
pub enum ViewElement {
    /// A virtual class declaration.
    VirtualClass(VirtualClassDef),
    /// A virtual attribute / method declaration.
    Attribute(AttrDecl),
    /// A hide specification.
    Hide(Hide),
}

/// An unbound view definition.
#[derive(Clone, PartialEq, Debug)]
pub struct ViewDef {
    /// The view's name.
    pub name: Symbol,
    /// The import section (applied first, in order).
    pub imports: Vec<Import>,
    /// Classes, attributes and hides, applied in order.
    pub elements: Vec<ViewElement>,
}

impl ViewDef {
    /// A new, empty view definition.
    pub fn new(name: impl Into<Symbol>) -> ViewDef {
        ViewDef {
            name: name.into(),
            imports: Vec::new(),
            elements: Vec::new(),
        }
    }

    /// `import all classes from database db`.
    pub fn import_all(mut self, db: impl Into<Symbol>) -> ViewDef {
        self.imports.push(Import {
            db: db.into(),
            what: ImportWhat::AllClasses,
        });
        self
    }

    /// `import class name from database db`.
    pub fn import_class(mut self, db: impl Into<Symbol>, name: impl Into<Symbol>) -> ViewDef {
        self.imports.push(Import {
            db: db.into(),
            what: ImportWhat::Class {
                name: name.into(),
                alias: None,
            },
        });
        self
    }

    /// `import class name from database db as alias`.
    pub fn import_class_as(
        mut self,
        db: impl Into<Symbol>,
        name: impl Into<Symbol>,
        alias: impl Into<Symbol>,
    ) -> ViewDef {
        self.imports.push(Import {
            db: db.into(),
            what: ImportWhat::Class {
                name: name.into(),
                alias: Some(alias.into()),
            },
        });
        self
    }

    /// `hide attribute attr in class class`.
    pub fn hide_attr(mut self, class: impl Into<Symbol>, attr: impl Into<Symbol>) -> ViewDef {
        self.elements.push(ViewElement::Hide(Hide::Attrs {
            attrs: vec![attr.into()],
            class: class.into(),
        }));
        self
    }

    /// `hide class class`.
    pub fn hide_class(mut self, class: impl Into<Symbol>) -> ViewDef {
        self.elements
            .push(ViewElement::Hide(Hide::Class(class.into())));
        self
    }

    /// Adds a virtual class declaration.
    pub fn virtual_class(mut self, name: impl Into<Symbol>, includes: Vec<IncludeSpec>) -> ViewDef {
        self.elements
            .push(ViewElement::VirtualClass(VirtualClassDef {
                name: name.into(),
                params: Vec::new(),
                includes,
            }));
        self
    }

    /// Adds a parameterized virtual class declaration.
    pub fn parameterized_class(
        mut self,
        name: impl Into<Symbol>,
        params: Vec<Symbol>,
        includes: Vec<IncludeSpec>,
    ) -> ViewDef {
        self.elements
            .push(ViewElement::VirtualClass(VirtualClassDef {
                name: name.into(),
                params,
                includes,
            }));
        self
    }

    /// `attribute name in class class has value body` (type inferred).
    pub fn virtual_attr(
        mut self,
        class: impl Into<Symbol>,
        name: impl Into<Symbol>,
        body: Expr,
    ) -> ViewDef {
        self.elements.push(ViewElement::Attribute(AttrDecl {
            name: name.into(),
            params: Vec::new(),
            ty: None,
            class: class.into(),
            body: Some(body),
        }));
        self
    }

    /// Adds a full attribute declaration.
    pub fn attribute(mut self, decl: AttrDecl) -> ViewDef {
        self.elements.push(ViewElement::Attribute(decl));
        self
    }

    /// Parses a complete view-definition script — the paper's general
    /// structure of §3 — into a `ViewDef`. The script must begin with
    /// `create view Name;`.
    pub fn from_script(src: &str) -> Result<ViewDef> {
        let stmts = parse_program(src).map_err(ViewError::from)?;
        Self::from_stmts(&stmts)
    }

    /// Renders the definition back to DDL text; `from_script ∘ to_script`
    /// is the identity (tested below), so view definitions are persistable
    /// artifacts just like database dumps.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "create view {};", self.name);
        for import in &self.imports {
            match &import.what {
                ImportWhat::AllClasses => {
                    let _ = writeln!(out, "import all classes from database {};", import.db);
                }
                ImportWhat::Class { name, alias } => {
                    let _ = write!(out, "import class {name} from database {}", import.db);
                    if let Some(a) = alias {
                        let _ = write!(out, " as {a}");
                    }
                    let _ = writeln!(out, ";");
                }
            }
        }
        for element in &self.elements {
            match element {
                ViewElement::Hide(Hide::Attrs { attrs, class }) => {
                    let _ = write!(
                        out,
                        "hide {} ",
                        if attrs.len() == 1 {
                            "attribute"
                        } else {
                            "attributes"
                        }
                    );
                    for (i, a) in attrs.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{a}");
                    }
                    let _ = writeln!(out, " in class {class};");
                }
                ViewElement::Hide(Hide::Class(c)) => {
                    let _ = writeln!(out, "hide class {c};");
                }
                ViewElement::VirtualClass(vc) => {
                    let _ = write!(out, "class {}", vc.name);
                    if !vc.params.is_empty() {
                        let _ = write!(out, "(");
                        for (i, p) in vc.params.iter().enumerate() {
                            if i > 0 {
                                let _ = write!(out, ", ");
                            }
                            let _ = write!(out, "{p}");
                        }
                        let _ = write!(out, ")");
                    }
                    let _ = write!(out, " includes ");
                    for (i, inc) in vc.includes.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        match inc {
                            IncludeSpec::Class(n) => {
                                let _ = write!(out, "{n}");
                            }
                            IncludeSpec::Like(n) => {
                                let _ = write!(out, "like {n}");
                            }
                            IncludeSpec::Query(q) => {
                                let _ = write!(out, "({q})");
                            }
                            IncludeSpec::Imaginary(q) => {
                                let _ = write!(out, "imaginary ({q})");
                            }
                        }
                    }
                    let _ = writeln!(out, ";");
                }
                ViewElement::Attribute(decl) => {
                    let _ = write!(out, "attribute {}", decl.name);
                    if !decl.params.is_empty() {
                        let _ = write!(out, "(");
                        for (i, (p, t)) in decl.params.iter().enumerate() {
                            if i > 0 {
                                let _ = write!(out, ", ");
                            }
                            let _ = write!(out, "{p}: {t}");
                        }
                        let _ = write!(out, ")");
                    }
                    if let Some(t) = &decl.ty {
                        let _ = write!(out, " of type {t}");
                    }
                    let _ = write!(out, " in class {}", decl.class);
                    if let Some(body) = &decl.body {
                        let _ = write!(out, " has value {body}");
                    }
                    let _ = writeln!(out, ";");
                }
            }
        }
        out
    }

    /// Builds a `ViewDef` from parsed statements.
    pub fn from_stmts(stmts: &[Stmt]) -> Result<ViewDef> {
        let mut it = stmts.iter();
        let name = match it.next() {
            Some(Stmt::CreateView(n)) => *n,
            other => {
                return Err(ViewError::Definition(format!(
                    "a view script must begin with `create view Name;`, found {other:?}"
                )))
            }
        };
        let mut def = ViewDef::new(name);
        for stmt in it {
            match stmt {
                Stmt::Import { what, db } => def.imports.push(Import {
                    db: *db,
                    what: what.clone(),
                }),
                Stmt::HideAttrs { attrs, class } => {
                    def.elements.push(ViewElement::Hide(Hide::Attrs {
                        attrs: attrs.clone(),
                        class: *class,
                    }))
                }
                Stmt::HideClass(c) => def.elements.push(ViewElement::Hide(Hide::Class(*c))),
                Stmt::VirtualClassDecl {
                    name,
                    params,
                    includes,
                } => def
                    .elements
                    .push(ViewElement::VirtualClass(VirtualClassDef {
                        name: *name,
                        params: params.clone(),
                        includes: includes.clone(),
                    })),
                Stmt::AttributeDecl {
                    name,
                    params,
                    ty,
                    class,
                    body,
                } => def.elements.push(ViewElement::Attribute(AttrDecl {
                    name: *name,
                    params: params.clone(),
                    ty: ty.clone(),
                    class: *class,
                    body: body.clone(),
                })),
                Stmt::CreateView(_) => {
                    return Err(ViewError::Definition(
                        "nested `create view` inside a view script".into(),
                    ))
                }
                other => {
                    return Err(ViewError::Definition(format!(
                        "statement not allowed in a view definition: {other:?}"
                    )))
                }
            }
        }
        Ok(def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    #[test]
    fn parses_the_papers_general_structure() {
        let def = ViewDef::from_script(
            r#"
            create view My_View;
            import all classes from database Chrysler;
            import class Person from database Ford as Ford_Person;
            class Adult includes (select P from Person where P.Age >= 21);
            attribute Address in class Person has value
                [City: self.City, Street: self.Street];
            hide attribute Salary in class Employee;
            "#,
        )
        .unwrap();
        assert_eq!(def.name, sym("My_View"));
        assert_eq!(def.imports.len(), 2);
        assert_eq!(def.elements.len(), 3);
        assert!(matches!(def.elements[0], ViewElement::VirtualClass(_)));
        assert!(matches!(def.elements[1], ViewElement::Attribute(_)));
        assert!(matches!(def.elements[2], ViewElement::Hide(_)));
    }

    #[test]
    fn requires_create_view_header() {
        let err = ViewDef::from_script("import all classes from database D;").unwrap_err();
        assert!(matches!(err, ViewError::Definition(_)));
    }

    #[test]
    fn rejects_database_statements() {
        let err = ViewDef::from_script("create view V; database D;").unwrap_err();
        assert!(matches!(err, ViewError::Definition(_)));
    }

    #[test]
    fn to_script_roundtrips() {
        let scripts = [r#"create view My_View;
               import all classes from database Chrysler;
               import class Person from database Ford as Ford_Person;
               class Adult includes (select P from P in Person where P.Age >= 21);
               class Ship includes Tanker, Cruiser, Trawler;
               class On_Sale includes like On_Sale_Spec;
               class Resident(X) includes (select P from P in Person where P.City = X);
               class Family includes imaginary
                   (select [Husband: H, Wife: H.Spouse] from H in Person);
               attribute Address of type [City: string] in class Person
                   has value [City: self.City];
               attribute Raise(amount: integer) in class Person
                   has value self.Age + amount;
               hide attribute Salary in class Employee;
               hide attributes City, Street in class Person;
               hide class Secret;"#];
        for src in scripts {
            let def = ViewDef::from_script(src).unwrap();
            let rendered = def.to_script();
            let reparsed = ViewDef::from_script(&rendered)
                .unwrap_or_else(|e| panic!("rendered script failed to reparse: {e}\n{rendered}"));
            assert_eq!(def, reparsed, "round-trip mismatch:\n{rendered}");
        }
    }

    #[test]
    fn builder_equivalence() {
        let scripted = ViewDef::from_script(
            "create view V; import all classes from database Navy; \
             class Ship includes Tanker, Cruiser;",
        )
        .unwrap();
        let built = ViewDef::new(sym("V"))
            .import_all(sym("Navy"))
            .virtual_class(
                sym("Ship"),
                vec![
                    IncludeSpec::Class(sym("Tanker")),
                    IncludeSpec::Class(sym("Cruiser")),
                ],
            );
        assert_eq!(scripted, built);
    }
}
