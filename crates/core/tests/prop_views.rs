//! Property tests for the view layer's core guarantees:
//!
//! * imaginary identity (§5.1): same core tuple ⇒ same oid, across
//!   arbitrary interleavings of updates and recomputations; distinct
//!   tuples ⇒ distinct oids;
//! * specialization populations always agree with re-filtering the base;
//! * hiding an attribute makes it unreachable from every user query path;
//! * hierarchy inference produces an acyclic hierarchy respecting R1/R2.

use ov_oodb::{sym, ClassId, Database, OodbError, Symbol, System, Type, Value};
use ov_query::DataSource;
use ov_views::{Materialization, ViewDef, ViewError, ViewOptions};
use proptest::prelude::*;

/// Builds a people database with the given (name, age) rows.
fn people_db(rows: &[(String, i64)]) -> System {
    let mut sys = System::new();
    let mut db = Database::new(sym("P"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![
                ov_oodb::AttrDef::stored(sym("Name"), Type::Str),
                ov_oodb::AttrDef::stored(sym("Age"), Type::Int),
            ],
        )
        .unwrap();
    for (name, age) in rows {
        db.create_object(
            person,
            Value::tuple([("Name", Value::str(name)), ("Age", Value::Int(*age))]),
        )
        .unwrap();
    }
    sys.add_database(db).unwrap();
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A specialization class's population equals re-filtering the base —
    /// after any sequence of age updates.
    #[test]
    fn specialization_tracks_base(
        rows in prop::collection::vec(("[a-z]{1,6}", 0i64..100), 1..10),
        updates in prop::collection::vec((any::<prop::sample::Index>(), 0i64..100), 0..6),
        threshold in 0i64..100,
    ) {
        let sys = people_db(
            &rows.iter().map(|(n, a)| (n.clone(), *a)).collect::<Vec<_>>(),
        );
        let def = ViewDef::from_script(&format!(
            "create view V; import all classes from database P; \
             class Old includes (select X from Person where X.Age >= {threshold});"
        ))
        .unwrap();
        let view = def.binder(&sys).bind().unwrap();
        let incremental = def
            .binder(&sys).options(ViewOptions::builder()
                    .materialization(Materialization::Incremental)
                    .build()).bind()
            .unwrap();
        // Warm the incremental cache so deltas actually apply.
        incremental.extent_of(sym("Old")).unwrap();
        let db = sys.database(sym("P")).unwrap();
        for (ix, new_age) in &updates {
            let oids = {
                let d = db.read();
                d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
            };
            let target = oids[ix.index(oids.len())];
            db.write().set_attr(target, sym("Age"), Value::Int(*new_age)).unwrap();
            // Check agreement after each update.
            let expected: usize = {
                let d = db.read();
                oids.iter()
                    .filter(|&&o| {
                        matches!(d.stored_attr(o, sym("Age")).unwrap(),
                                 Value::Int(a) if *a >= threshold)
                    })
                    .count()
            };
            let got = view.extent_of(sym("Old")).unwrap().len();
            prop_assert_eq!(got, expected);
            // Incremental maintenance agrees with recomputation.
            let inc = incremental.extent_of(sym("Old")).unwrap();
            prop_assert_eq!(inc, view.extent_of(sym("Old")).unwrap());
        }
    }

    /// Imaginary identity: equal core tuples keep their oid across
    /// arbitrary unrelated updates; distinct tuples get distinct oids.
    #[test]
    fn imaginary_identity_is_a_function(
        rows in prop::collection::vec(("[a-z]{1,6}", 0i64..5), 1..8),
        updates in prop::collection::vec((any::<prop::sample::Index>(), 0i64..5), 0..6),
    ) {
        let sys = people_db(
            &rows.iter().map(|(n, a)| (n.clone(), *a)).collect::<Vec<_>>(),
        );
        let view = ViewDef::from_script(
            "create view V; import all classes from database P; \
             class AgeGroup includes imaginary (select [Age: X.Age] from X in Person);",
        )
        .unwrap()
        .binder(&sys).bind()
        .unwrap();
        // Record the oid of each distinct age currently present.
        let mut seen: std::collections::HashMap<i64, ov_oodb::Oid> =
            std::collections::HashMap::new();
        let db = sys.database(sym("P")).unwrap();
        let oids = {
            let d = db.read();
            d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())
        };
        let mut observe = |view: &ov_views::View| -> Result<(), TestCaseError> {
            let groups = view.extent_of(sym("AgeGroup")).unwrap();
            for g in groups {
                let age = view.attr(g, sym("Age")).unwrap().as_int().unwrap();
                match seen.get(&age) {
                    None => {
                        // New age value: must be a brand-new oid.
                        prop_assert!(!seen.values().any(|&o| o == g));
                        seen.insert(age, g);
                    }
                    Some(&prev) => prop_assert_eq!(prev, g, "age {} changed oid", age),
                }
            }
            Ok(())
        };
        observe(&view)?;
        for (ix, new_age) in &updates {
            let target = oids[ix.index(oids.len())];
            db.write().set_attr(target, sym("Age"), Value::Int(*new_age)).unwrap();
            observe(&view)?;
        }
    }

    /// Hide makes the attribute unreachable via direct access, selects, and
    /// type inference — for the class and any subclass.
    #[test]
    fn hidden_attributes_are_unreachable(
        rows in prop::collection::vec(("[a-z]{1,6}", 0i64..100), 1..6),
    ) {
        let sys = people_db(
            &rows.iter().map(|(n, a)| (n.clone(), *a)).collect::<Vec<_>>(),
        );
        let view = ViewDef::from_script(
            "create view V; import all classes from database P; \
             class Old includes (select X from Person where X.Age >= 0); \
             hide attribute Age in class Person;",
        )
        .unwrap()
        .binder(&sys).bind()
        .unwrap();
        // Unreachable through the base class and through the virtual
        // subclass alike.
        prop_assert!(view.query("select P.Age from P in Person").is_err());
        prop_assert!(view.query("select O.Age from O in Old").is_err());
        let person = DataSource::class_by_name(&view, sym("Person")).unwrap();
        prop_assert!(DataSource::attr_sig(&view, person, sym("Age")).is_none());
        let q = ov_query::parse_select("select P.Age from P in Person").unwrap();
        prop_assert!(ov_query::infer_select(&view, &q).is_err());
        // Direct object access fails too.
        let db = sys.database(sym("P")).unwrap();
        let oid = {
            let d = db.read();
            d.deep_extent(d.schema.class_by_name(sym("Person")).unwrap())[0]
        };
        match view.attr(oid, sym("Age")) {
            Err(ViewError::Oodb(OodbError::UnknownAttr { .. })) => {}
            other => prop_assert!(false, "expected UnknownAttr, got {other:?}"),
        }
    }
}

// Random generalization lattices: define virtual classes over random
// subsets of base classes; R1/R2 and acyclicity must hold.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn inferred_hierarchies_are_sound(
        // Base: a root with `n` children; virtual classes over random
        // non-empty subsets of the children.
        n in 2usize..6,
        subsets in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 6),
            1..4
        ),
    ) {
        let mut sys = System::new();
        let mut db = Database::new(sym("B"));
        let root = db.create_class(sym("Root"), &[], vec![]).unwrap();
        let children: Vec<(Symbol, ClassId)> = (0..n)
            .map(|i| {
                let name = sym(&format!("Leaf{i}"));
                (name, db.create_class(name, &[root], vec![]).unwrap())
            })
            .collect();
        sys.add_database(db).unwrap();

        let mut script = String::from("create view V; import all classes from database B;\n");
        let mut virtuals = Vec::new();
        for (vi, subset) in subsets.iter().enumerate() {
            let picked: Vec<&str> = children
                .iter()
                .enumerate()
                .filter(|(i, _)| subset[*i % subset.len()] || *i == 0)
                .map(|(_, (name, _))| name.as_str())
                .collect();
            let vname = format!("V{vi}_{n}");
            script.push_str(&format!("class {} includes {};\n", vname, picked.join(", ")));
            virtuals.push((vname, picked));
        }
        let view = ViewDef::from_script(&script).unwrap().binder(&sys).bind().unwrap();
        for (vname, picked) in &virtuals {
            // R2: every included class is a subclass of the virtual class.
            for p in picked {
                prop_assert!(view.is_subclass_by_name(sym(p), sym(vname)).unwrap());
                // Acyclicity: the reverse must NOT hold.
                prop_assert!(!view.is_subclass_by_name(sym(vname), sym(p)).unwrap());
            }
            // R1: Root is a superclass.
            prop_assert!(view.is_subclass_by_name(sym(vname), sym("Root")).unwrap());
        }
    }
}
