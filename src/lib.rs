//! # objects-and-views — umbrella crate
//!
//! A faithful, from-scratch Rust reproduction of **“Objects and Views”**
//! (Serge Abiteboul & Anthony Bonner, SIGMOD 1991): a view mechanism for
//! object-oriented databases with virtual attributes, import/hide, virtual
//! classes (specialization, generalization, behavioral generalization,
//! parameterized classes), inferred class hierarchies, and imaginary objects
//! with stable identity.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`oodb`] — the O₂-style data model and object store;
//! * [`query`] — the query/DDL language (parser, type inference, evaluator);
//! * [`views`] — the paper's view mechanism (the core contribution);
//! * [`relational`] — a minimal relational engine bridged into views.
//!
//! For application code, [`prelude`] flattens the common surface of all
//! four layers into one import, and [`Error`] unifies their error enums:
//!
//! ```
//! use objects_and_views::prelude::*;
//!
//! fn demo() -> Result<(), objects_and_views::Error> {
//!     let mut sys = System::new();
//!     execute_script(&mut sys, r#"
//!         database Staff;
//!         class Person type [Name: string, Age: integer];
//!         object #1 in Person value [Name: "Maggy", Age: 65];
//!     "#)?;
//!     let view = ViewDef::new("V")
//!         .import_all("Staff")
//!         .binder(&sys)
//!         .options(
//!             ViewOptions::builder()
//!                 .population(Population::Incremental)
//!                 .build(),
//!         )
//!         .bind()?;
//!     assert_eq!(run_query(&view, "count(Person)")?, Value::Int(1));
//!     Ok(())
//! }
//! demo().unwrap();
//! ```
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction experiments.

pub use ov_oodb as oodb;
pub use ov_query as query;
pub use ov_relational as relational;
pub use ov_views as views;

mod error;

pub use error::Error;

/// One-stop imports: the surface that examples, tests, and typical
/// applications touch, flattened from all four layers.
pub mod prelude {
    pub use crate::oodb::{
        sym, ClassId, ConflictPolicy, Durability, Oid, Symbol, System, Type, Value,
    };
    pub use crate::query::{
        execute_script, run_query, run_query_parallel, DataSource, ParallelConfig,
    };
    pub use crate::relational::{bridge, Relation, RelationalDb};
    pub use crate::views::{
        Binder, CatalogTxn, DdlOutcome, DepEdge, DepTarget, DependencyGraph, IdentityMode,
        Materialization, Outcome, Population, Session, View, ViewDef, ViewError, ViewHealth,
        ViewOptions, ViewOptionsBuilder, ViewStats,
    };
    pub use crate::Error;
}
