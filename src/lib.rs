//! # objects-and-views — umbrella crate
//!
//! A faithful, from-scratch Rust reproduction of **“Objects and Views”**
//! (Serge Abiteboul & Anthony Bonner, SIGMOD 1991): a view mechanism for
//! object-oriented databases with virtual attributes, import/hide, virtual
//! classes (specialization, generalization, behavioral generalization,
//! parameterized classes), inferred class hierarchies, and imaginary objects
//! with stable identity.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`oodb`] — the O₂-style data model and object store;
//! * [`query`] — the query/DDL language (parser, type inference, evaluator);
//! * [`views`] — the paper's view mechanism (the core contribution);
//! * [`relational`] — a minimal relational engine bridged into views.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction experiments.

pub use ov_oodb as oodb;
pub use ov_query as query;
pub use ov_relational as relational;
pub use ov_views as views;
