//! `ovq` — an interactive shell for objects-and-views.
//!
//! ```text
//! cargo run --bin ovq
//! cargo run --bin ovq -- path/to/script.ovq     # run a script, then prompt
//! cargo run --bin ovq -- --batch script.ovq     # run a script and exit
//! ```
//!
//! Statements end with `;` and may span lines. Meta commands:
//!
//! | command | effect |
//! |---|---|
//! | `.help` | this table |
//! | `.schema` | databases, classes, views in the session |
//! | `.use NAME` | focus a database or view |
//! | `.load FILE` | execute a script file |
//! | `.dump DB` | print a database as DDL |
//! | `.explain T Q` | plan + trace of query `Q` against database/view `T` |
//! | `.plan V C` | population plan of virtual class `C` of view `V` |
//! | `.metrics [FILE]` | process-wide metrics snapshot as JSON |
//! | `.trace on\|off\|dump FILE` | flight recorder control + Chrome-trace export |
//! | `.quit` | exit |

use std::io::{BufRead, Write};

use objects_and_views::prelude::*;

fn main() {
    let mut session = Session::new();
    let mut batch = false;
    let mut scripts = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--batch" {
            batch = true;
        } else {
            scripts.push(arg);
        }
    }
    for path in &scripts {
        if let Err(e) = load_file(&mut session, path) {
            eprintln!("error loading {path}: {e}");
            std::process::exit(1);
        }
    }
    if batch {
        return;
    }

    println!("ovq — Objects and Views (SIGMOD 1991) shell. `.help` for help.");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("ovq> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta(&mut session, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // Execute once the statement terminator is present.
        if trimmed.ends_with(';') {
            run(&mut session, &buffer);
            buffer.clear();
        }
    }
}

/// Handles a meta command; returns false to exit.
fn meta(session: &mut Session, cmd: &str) -> bool {
    let mut parts = cmd.splitn(2, ' ');
    let head = parts.next().unwrap_or("");
    let arg = parts.next().unwrap_or("").trim();
    match head {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".help            this help\n\
                 .schema          databases, classes and views\n\
                 .use NAME        focus a database or view\n\
                 .load FILE       execute a script file\n\
                 .dump DB         print a database as DDL\n\
                 .views           print every view definition as DDL\n\
                 .save [FILE]     serialize the whole session as a script\n\
                 .explain T Q     plan + trace of query Q against T\n\
                 .plan V C        population plan of virtual class C of view V\n\
                 .metrics [FILE]  process-wide metrics snapshot as JSON\n\
                 .trace on|off    enable/disable the span flight recorder\n\
                 .trace dump FILE write recorded spans to FILE (Chrome trace\n\
                                  JSON; .jsonl suffix selects JSON-lines)\n\
                 .trace clear     discard recorded spans\n\
                 .trace           recorder status\n\
                 .quit            exit\n\
                 \n\
                 Anything else is a statement (end with `;`):\n\
                 database D;  class C type [X: integer];  create view V;\n\
                 import all classes from database D;\n\
                 class Adult includes (select P from Person where P.Age >= 21);\n\
                 select A.Name from A in Adult;"
            );
        }
        ".schema" => print!("{}", session.describe()),
        ".views" => {
            for name in session.view_names() {
                if let Some(script) = session.view_script(name) {
                    print!("{script}");
                }
            }
        }
        ".use" => match session.focus(sym(arg)) {
            Ok(Outcome::Notice(n)) => println!("{n}"),
            Ok(_) => {}
            Err(e) => eprintln!("error: {e}"),
        },
        ".load" => {
            if let Err(e) = load_file(session, arg) {
                eprintln!("error: {e}");
            }
        }
        ".explain" => {
            let mut parts = arg.splitn(2, ' ');
            let target = parts.next().unwrap_or("");
            let q = parts.next().unwrap_or("");
            if target.is_empty() || q.is_empty() {
                eprintln!("usage: .explain TARGET QUERY");
            } else {
                match session.explain(sym(target), q) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".plan" => {
            let mut parts = arg.splitn(2, ' ');
            let view = parts.next().unwrap_or("");
            let class = parts.next().unwrap_or("").trim();
            if view.is_empty() || class.is_empty() {
                eprintln!("usage: .plan VIEW CLASS");
            } else {
                match session.explain_population(sym(view), sym(class)) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".metrics" => {
            let json = objects_and_views::oodb::registry().snapshot().to_json();
            if arg.is_empty() {
                print!("{json}");
            } else {
                match std::fs::write(arg, &json) {
                    Ok(()) => println!("-- metrics written to {arg}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".trace" => {
            let oodb = || objects_and_views::oodb::recorder();
            let mut parts = arg.splitn(2, ' ');
            let sub = parts.next().unwrap_or("");
            let file = parts.next().unwrap_or("").trim();
            match sub {
                "on" => {
                    objects_and_views::oodb::trace::set_enabled(true);
                    println!("-- tracing on");
                }
                "off" => {
                    objects_and_views::oodb::trace::set_enabled(false);
                    println!("-- tracing off");
                }
                "clear" => {
                    oodb().clear();
                    println!("-- trace buffer cleared");
                }
                "dump" => {
                    if file.is_empty() {
                        eprintln!("usage: .trace dump FILE");
                    } else {
                        let rec = oodb();
                        let out = if file.ends_with(".jsonl") {
                            rec.dump_jsonl()
                        } else {
                            rec.dump_chrome_trace()
                        };
                        match std::fs::write(file, &out) {
                            Ok(()) => println!(
                                "-- {} spans from {} threads written to {file}",
                                rec.snapshot().len(),
                                rec.thread_count()
                            ),
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                "" => {
                    let rec = oodb();
                    println!(
                        "-- tracing {}: {} spans buffered, {} threads, {} dropped",
                        if objects_and_views::oodb::trace::enabled() {
                            "on"
                        } else {
                            "off"
                        },
                        rec.snapshot().len(),
                        rec.thread_count(),
                        rec.dropped()
                    );
                }
                other => eprintln!("unknown `.trace {other}` (try on, off, dump FILE, clear)"),
            }
        }
        ".save" => {
            if arg.is_empty() {
                print!("{}", session.save());
            } else {
                match std::fs::write(arg, session.save()) {
                    Ok(()) => println!("-- saved to {arg}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".dump" => {
            match session.system().database(sym(arg)) {
                Ok(db) => print!("{}", objects_and_views::oodb::dump_database(&db.read())),
                Err(e) => eprintln!("error: {e}"),
            };
        }
        other => eprintln!("unknown meta command `{other}` (try `.help`)"),
    }
    true
}

fn run(session: &mut Session, src: &str) {
    match session.execute(src) {
        Ok(outcomes) => {
            for o in outcomes {
                match o {
                    Outcome::Done => {}
                    Outcome::Value(v) => println!("{v}"),
                    Outcome::Notice(n) => println!("-- {n}"),
                }
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn load_file(session: &mut Session, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    for o in session.execute(&text)? {
        match o {
            Outcome::Done => {}
            Outcome::Value(v) => println!("{v}"),
            Outcome::Notice(n) => println!("-- {n}"),
        }
    }
    Ok(())
}
