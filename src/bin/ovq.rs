//! `ovq` — an interactive shell for objects-and-views.
//!
//! ```text
//! cargo run --bin ovq
//! cargo run --bin ovq -- path/to/script.ovq     # run a script, then prompt
//! cargo run --bin ovq -- --batch script.ovq     # run a script and exit
//! cargo run --bin ovq -- --data-dir DIR         # durable session rooted at DIR
//! cargo run --bin ovq -- --data-dir DIR --durability walsync
//! ```
//!
//! `--data-dir` opens (or creates) a durable session: every database lives
//! under `DIR/databases/<name>/` with a write-ahead log and snapshot
//! checkpoints, and view definitions persist in `DIR/views.ovq`.
//! `--durability` picks the commit level (`none`, `wal` — the default with
//! `--data-dir` — or `walsync`).
//!
//! Statements end with `;` and may span lines. Meta commands:
//!
//! | command | effect |
//! |---|---|
//! | `.help` | this table |
//! | `.schema` | databases, classes, views in the session |
//! | `.use NAME` | focus a database or view |
//! | `.load FILE` | execute a script file |
//! | `.dump DB` | print a database as DDL |
//! | `.explain T Q` | plan + trace of query `Q` against database/view `T` |
//! | `.analyze T Q` | EXPLAIN ANALYZE: measured trace + result of `Q` against `T` |
//! | `.plan V C` | population plan of virtual class `C` of view `V` |
//! | `.metrics [FILE]` | process-wide metrics snapshot as JSON |
//! | `.workload …` | per-fingerprint workload profile (see `.help`) |
//! | `.slowlog …` | slow-query log with annotated traces (see `.help`) |
//! | `.stats [C]` | optimizer statistics (cardinality, NDV, min/max, nulls) |
//! | `.trace on\|off\|dump FILE` | flight recorder control + Chrome-trace export |
//! | `.faults …` | fault-injection control (see `.help`) |
//! | `.budget …` | per-statement execution budget (see `.help`) |
//! | `.engine …` | predicate engine for scans (see `.help`) |
//! | `.wal` | per-database WAL status (durable sessions) |
//! | `.checkpoint` | snapshot every durable database, truncate WALs |
//! | `.quit` | exit |

use std::io::{BufRead, Write};
use std::sync::Arc;

use objects_and_views::oodb::faults;
use objects_and_views::prelude::*;
use objects_and_views::query::{Budget, EngineMode};

/// The `.help` table, as a const so tests can assert every meta command
/// documents itself.
const HELP: &str = "\
.help            this help\n\
.schema          databases, classes and views\n\
.use NAME        focus a database or view\n\
.load FILE       execute a script file\n\
.dump DB         print a database as DDL\n\
.views           print every view definition as DDL\n\
.save [FILE]     serialize the whole session as a script\n\
.explain T Q     plan + trace of query Q against T\n\
.analyze T Q     EXPLAIN ANALYZE: run Q against T, print the measured\n\
                 trace (per-scan actuals, engine, fingerprint) + result\n\
.plan V C        population plan of virtual class C of view V\n\
.metrics [FILE]  process-wide metrics snapshot as JSON\n\
.workload        per-fingerprint workload aggregates (needs `.workload on`)\n\
.workload on|off|clear\n\
                 toggle the profiler / reset the registry\n\
.slowlog         captured slow queries with their annotated traces\n\
.slowlog ms N | clear\n\
                 set the slow threshold (milliseconds) / empty the ring\n\
.stats [CLASS]   optimizer statistics: cardinality, NDV, min/max, nulls\n\
.trace on|off    enable/disable the span flight recorder\n\
.trace dump FILE write recorded spans to FILE (Chrome trace\n\
                 JSON; .jsonl suffix selects JSON-lines)\n\
.trace clear     discard recorded spans\n\
.trace           recorder status\n\
.faults          armed failpoints and hit/fired counts\n\
.faults sites    failpoint sites compiled into the pipeline\n\
.faults seed N   seed the fault RNG streams\n\
.faults arm SITE SCHED ACTION\n\
                 SCHED: nth:N | from:N | p:0.5\n\
                 ACTION: error | panic | delay:MS\n\
.faults disarm SITE | .faults clear\n\
.budget          current per-statement budget\n\
.budget ms N | steps N | rows N | depth N | off\n\
.engine          current predicate engine (scans show it in .plan/.explain)\n\
.engine compiled | interp | auto\n\
.planner         cost-based planner status + plan-cache hit/miss/replan counts\n\
.planner on|off  enable/disable statistics-driven strategy selection\n\
.wal             per-database WAL status (durable sessions only)\n\
.checkpoint      snapshot every durable database and truncate its WAL\n\
.quit            exit\n\
\n\
Anything else is a statement (end with `;`):\n\
database D;  class C type [X: integer];  create view V;\n\
import all classes from database D;\n\
class Adult includes (select P from Person where P.Age >= 21);\n\
select A.Name from A in Adult;";

/// The failpoint sites compiled into the pipeline, for `.faults arm` name
/// validation (the registry needs `&'static str` names anyway).
const FAULT_SITES: &[&str] = &[
    "store.insert",
    "store.update",
    "store.set_field",
    "store.remove",
    "store.index_lookup",
    "store.changes_since",
    "query.scan_chunk",
    "view.scan_chunk",
    "view.population_recompute",
    "view.bind",
    "wal.append",
    "wal.torn_write",
    "wal.fsync",
    "checkpoint.write",
    "checkpoint.rename",
];

/// Budget knobs applied to every subsequent statement (each statement gets
/// a *fresh* `Budget` built from these, so limits don't accumulate).
#[derive(Clone, Copy, Default)]
struct BudgetSpec {
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    max_rows: Option<u64>,
    max_depth: Option<usize>,
}

impl BudgetSpec {
    fn is_off(&self) -> bool {
        self.deadline_ms.is_none()
            && self.max_steps.is_none()
            && self.max_rows.is_none()
            && self.max_depth.is_none()
    }

    fn build(&self) -> Budget {
        let mut b = Budget::new();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = self.max_steps {
            b = b.with_max_steps(n);
        }
        if let Some(n) = self.max_rows {
            b = b.with_max_rows(n);
        }
        if let Some(n) = self.max_depth {
            b = b.with_max_depth(n);
        }
        b
    }
}

fn main() {
    let mut budget = BudgetSpec::default();
    let mut batch = false;
    let mut scripts = Vec::new();
    let mut data_dir: Option<String> = None;
    let mut durability: Option<Durability> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch" => batch = true,
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(dir),
                None => {
                    eprintln!("--data-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--durability" => match args.next().as_deref().and_then(Durability::parse) {
                Some(d) => durability = Some(d),
                None => {
                    eprintln!("--durability needs one of: none, wal, walsync");
                    std::process::exit(2);
                }
            },
            _ => scripts.push(arg),
        }
    }
    if durability.is_some() && data_dir.is_none() {
        eprintln!("--durability needs --data-dir (in-memory sessions have no WAL)");
        std::process::exit(2);
    }
    let mut session = match &data_dir {
        Some(dir) => {
            let level = durability.unwrap_or(Durability::Wal);
            match Session::open(std::path::Path::new(dir), level) {
                Ok(s) => {
                    println!(
                        "-- durable session at {dir} (durability {})",
                        level.as_str()
                    );
                    s
                }
                Err(e) => {
                    eprintln!("error opening durable session at {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Session::new(),
    };
    for path in &scripts {
        if let Err(e) = load_file(&mut session, path) {
            eprintln!("error loading {path}: {e}");
            std::process::exit(1);
        }
    }
    if batch {
        return;
    }

    println!("ovq — Objects and Views (SIGMOD 1991) shell. `.help` for help.");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("ovq> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta(&mut session, &mut budget, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // Execute once the statement terminator is present.
        if trimmed.ends_with(';') {
            run(&mut session, &budget, &buffer);
            buffer.clear();
        }
    }
}

/// Handles a meta command; returns false to exit.
fn meta(session: &mut Session, budget: &mut BudgetSpec, cmd: &str) -> bool {
    let mut parts = cmd.splitn(2, ' ');
    let head = parts.next().unwrap_or("");
    let arg = parts.next().unwrap_or("").trim();
    match head {
        ".quit" | ".exit" => return false,
        ".help" => println!("{HELP}"),
        ".schema" => print!("{}", session.describe()),
        ".views" => {
            for name in session.view_names() {
                if let Some(script) = session.view_script(name) {
                    print!("{script}");
                }
            }
        }
        ".use" => match session.focus(sym(arg)) {
            Ok(Outcome::Notice(n)) => println!("{n}"),
            Ok(_) => {}
            Err(e) => eprintln!("error: {e}"),
        },
        ".load" => {
            if let Err(e) = load_file(session, arg) {
                eprintln!("error: {e}");
            }
        }
        ".explain" => {
            let mut parts = arg.splitn(2, ' ');
            let target = parts.next().unwrap_or("");
            let q = parts.next().unwrap_or("");
            if target.is_empty() || q.is_empty() {
                eprintln!("usage: .explain TARGET QUERY");
            } else {
                match session.explain(sym(target), q) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".analyze" => {
            let mut parts = arg.splitn(2, ' ');
            let target = parts.next().unwrap_or("");
            let q = parts.next().unwrap_or("");
            if target.is_empty() || q.is_empty() {
                eprintln!("usage: .analyze TARGET QUERY");
            } else {
                match session.analyze(sym(target), q) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".workload" => {
            use objects_and_views::oodb::{profiling_enabled, set_profiling, workload};
            match arg {
                "on" => {
                    set_profiling(true);
                    println!("-- profiling on (queries now feed .workload/.slowlog/.stats)");
                }
                "off" => {
                    set_profiling(false);
                    println!("-- profiling off");
                }
                "clear" => {
                    workload().clear();
                    println!("-- workload registry cleared");
                }
                "" => {
                    if !profiling_enabled() {
                        println!("-- profiling is off (`.workload on` to start recording)");
                    }
                    let entries = workload().snapshot();
                    if entries.is_empty() {
                        println!("-- no workload recorded");
                    }
                    for (fp, e) in entries {
                        let lat = e.latency.snapshot();
                        println!(
                            "{fp} calls={} rows={} mean={} p95={} compiled={} interp={} \
                             plan={}h/{}m pop[hit={} delta={} recompute={} stale={}]\n  {}",
                            e.calls.get(),
                            e.rows.get(),
                            objects_and_views::query::plan::fmt_ns(lat.mean() as u64),
                            objects_and_views::query::plan::fmt_ns(lat.p95()),
                            e.compiled.get(),
                            e.interpreted.get(),
                            e.plan_cache_hits.get(),
                            e.plan_cache_misses.get(),
                            e.pop_cache_hits.get(),
                            e.pop_deltas.get(),
                            e.pop_recomputes.get(),
                            e.pop_stale_serves.get(),
                            e.normalized,
                        );
                    }
                }
                other => eprintln!("unknown `.workload {other}` (try on, off, clear)"),
            }
        }
        ".slowlog" => {
            use objects_and_views::oodb::slow_queries;
            let mut parts = arg.split_whitespace();
            match (parts.next().unwrap_or(""), parts.next()) {
                ("", None) => {
                    let log = slow_queries();
                    let entries = log.entries();
                    println!(
                        "-- slow-query threshold {}; {} captured",
                        objects_and_views::query::plan::fmt_ns(log.threshold_ns()),
                        entries.len()
                    );
                    for e in entries {
                        println!(
                            "[{} fp={}] {}",
                            objects_and_views::query::plan::fmt_ns(e.nanos),
                            e.fingerprint,
                            e.query.trim()
                        );
                        for line in e.trace.lines() {
                            println!("  {line}");
                        }
                    }
                }
                ("clear", None) => {
                    slow_queries().clear();
                    println!("-- slow-query log cleared");
                }
                ("ms", Some(v)) => match v.parse::<u64>() {
                    Ok(ms) => {
                        slow_queries().set_threshold_ns(ms.saturating_mul(1_000_000));
                        println!("-- slow-query threshold = {ms}ms");
                    }
                    Err(_) => eprintln!("error: `{v}` is not a number"),
                },
                _ => eprintln!("usage: .slowlog [ms N | clear]"),
            }
        }
        ".stats" => {
            let snap = objects_and_views::oodb::stats().snapshot();
            let filter = if arg.is_empty() { None } else { Some(sym(arg)) };
            let mut shown = 0usize;
            for (class, cs) in &snap.classes {
                if filter.is_some_and(|f| f != *class) {
                    continue;
                }
                shown += 1;
                println!(
                    "{class}: cardinality={} (generation {})",
                    cs.cardinality.map_or("-".into(), |n| n.to_string()),
                    cs.generation
                );
                for (attr, a) in &cs.attrs {
                    println!(
                        "  .{attr} rows={} ndv={} nulls={:.2} min={} max={}",
                        a.rows,
                        a.ndv,
                        a.null_fraction,
                        a.min.as_ref().map_or("-".into(), |v| v.to_string()),
                        a.max.as_ref().map_or("-".into(), |v| v.to_string()),
                    );
                }
            }
            if shown == 0 {
                println!(
                    "-- no statistics{} (run queries with `.workload on`)",
                    filter.map_or(String::new(), |f| format!(" for {f}"))
                );
            }
        }
        ".plan" => {
            let mut parts = arg.splitn(2, ' ');
            let view = parts.next().unwrap_or("");
            let class = parts.next().unwrap_or("").trim();
            if view.is_empty() || class.is_empty() {
                eprintln!("usage: .plan VIEW CLASS");
            } else {
                match session.explain_population(sym(view), sym(class)) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".metrics" => {
            let json = objects_and_views::oodb::registry().snapshot().to_json();
            if arg.is_empty() {
                print!("{json}");
            } else {
                match std::fs::write(arg, &json) {
                    Ok(()) => println!("-- metrics written to {arg}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".trace" => {
            let oodb = || objects_and_views::oodb::recorder();
            let mut parts = arg.splitn(2, ' ');
            let sub = parts.next().unwrap_or("");
            let file = parts.next().unwrap_or("").trim();
            match sub {
                "on" => {
                    objects_and_views::oodb::trace::set_enabled(true);
                    println!("-- tracing on");
                }
                "off" => {
                    objects_and_views::oodb::trace::set_enabled(false);
                    println!("-- tracing off");
                }
                "clear" => {
                    oodb().clear();
                    println!("-- trace buffer cleared");
                }
                "dump" => {
                    if file.is_empty() {
                        eprintln!("usage: .trace dump FILE");
                    } else {
                        let rec = oodb();
                        let out = if file.ends_with(".jsonl") {
                            rec.dump_jsonl()
                        } else {
                            rec.dump_chrome_trace()
                        };
                        match std::fs::write(file, &out) {
                            Ok(()) => println!(
                                "-- {} spans from {} threads written to {file}",
                                rec.snapshot().len(),
                                rec.thread_count()
                            ),
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                "" => {
                    let rec = oodb();
                    println!(
                        "-- tracing {}: {} spans buffered, {} threads, {} dropped",
                        if objects_and_views::oodb::trace::enabled() {
                            "on"
                        } else {
                            "off"
                        },
                        rec.snapshot().len(),
                        rec.thread_count(),
                        rec.dropped()
                    );
                }
                other => eprintln!("unknown `.trace {other}` (try on, off, dump FILE, clear)"),
            }
        }
        ".faults" => {
            let mut parts = arg.split_whitespace();
            match parts.next().unwrap_or("") {
                "" => {
                    let status = faults::status();
                    if status.is_empty() {
                        println!("-- no failpoints armed");
                    } else {
                        for (site, hits, fired) in status {
                            println!("{site}: {hits} hits, {fired} fired");
                        }
                    }
                }
                "sites" => {
                    for site in FAULT_SITES {
                        println!("{site}");
                    }
                }
                "seed" => match parts.next().and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => {
                        faults::set_seed(seed);
                        println!("-- fault seed set to {seed} (affects sites armed from now on)");
                    }
                    None => eprintln!("usage: .faults seed N"),
                },
                "arm" => {
                    let site = parts.next().unwrap_or("");
                    let sched = parts.next().unwrap_or("");
                    let action = parts.next().unwrap_or("");
                    match parse_arm(site, sched, action) {
                        Ok((site, schedule, action)) => {
                            faults::arm(site, schedule, action);
                            println!("-- armed {site}");
                        }
                        Err(msg) => eprintln!("error: {msg}"),
                    }
                }
                "disarm" => match parts.next() {
                    Some(site) => {
                        faults::disarm(site);
                        println!("-- disarmed {site}");
                    }
                    None => eprintln!("usage: .faults disarm SITE"),
                },
                "clear" => {
                    faults::clear();
                    println!("-- all failpoints disarmed");
                }
                other => {
                    eprintln!("unknown `.faults {other}` (try sites, seed, arm, disarm, clear)")
                }
            }
        }
        ".budget" => {
            let mut parts = arg.split_whitespace();
            match (parts.next().unwrap_or(""), parts.next()) {
                ("", None) => {
                    if budget.is_off() {
                        println!("-- no budget (statements run unbounded)");
                    } else {
                        println!(
                            "-- per-statement budget: deadline={} steps={} rows={} depth={}",
                            budget.deadline_ms.map_or("-".into(), |v| format!("{v}ms")),
                            budget.max_steps.map_or("-".into(), |v| v.to_string()),
                            budget.max_rows.map_or("-".into(), |v| v.to_string()),
                            budget.max_depth.map_or("-".into(), |v| v.to_string()),
                        );
                    }
                }
                ("off", None) => {
                    *budget = BudgetSpec::default();
                    println!("-- budget off");
                }
                (knob @ ("ms" | "steps" | "rows" | "depth"), Some(v)) => match v.parse::<u64>() {
                    Ok(n) => {
                        match knob {
                            "ms" => budget.deadline_ms = Some(n),
                            "steps" => budget.max_steps = Some(n),
                            "rows" => budget.max_rows = Some(n),
                            _ => budget.max_depth = Some(n as usize),
                        }
                        println!("-- budget {knob} = {n} (fresh per statement)");
                    }
                    Err(_) => eprintln!("error: `{v}` is not a number"),
                },
                _ => eprintln!("usage: .budget [ms N | steps N | rows N | depth N | off]"),
            }
        }
        ".save" => {
            if arg.is_empty() {
                print!("{}", session.save());
            } else {
                match std::fs::write(arg, session.save()) {
                    Ok(()) => println!("-- saved to {arg}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".dump" => {
            match session.system().database(sym(arg)) {
                Ok(db) => print!("{}", objects_and_views::oodb::dump_database(&db.read())),
                Err(e) => eprintln!("error: {e}"),
            };
        }
        ".engine" => {
            if arg.is_empty() {
                let mode = session
                    .engine()
                    .unwrap_or_else(objects_and_views::query::engine_mode);
                println!(
                    "-- engine: {} (scans report Compiled/Interpreted in .plan and .explain)",
                    engine_mode_name(mode)
                );
                println!(
                    "-- compile fallbacks: {} (forced-compiled runs that dropped to the \
                     interpreter on an uncovered shape)",
                    objects_and_views::query::compile_fallbacks()
                );
            } else {
                match parse_engine_mode(arg) {
                    Some(mode) => {
                        // Session-scoped, not process-global: two shells (or
                        // a shell and a library embedder) never race on a
                        // shared engine setting.
                        session.set_engine(Some(mode));
                        println!("-- engine: {}", engine_mode_name(mode));
                    }
                    None => eprintln!("usage: .engine [compiled | interp | auto]"),
                }
            }
        }
        ".planner" => match arg {
            "on" | "off" => {
                objects_and_views::query::set_planner_enabled(arg == "on");
                println!("-- planner: {arg}");
            }
            "" => {
                let (hits, misses, replans) =
                    objects_and_views::query::planner::plan_cache_counters();
                println!(
                    "-- planner: {} (plan cache: {hits} hits, {misses} misses, \
                     {replans} drift replans)",
                    if objects_and_views::query::planner_enabled() {
                        "on"
                    } else {
                        "off"
                    }
                );
            }
            _ => eprintln!("usage: .planner [on | off]"),
        },
        ".wal" => {
            let statuses = session.wal_status();
            if statuses.is_empty() {
                println!("-- no durable databases (start with `--data-dir DIR`)");
            } else {
                for (db, s) in statuses {
                    println!(
                        "-- {db}: durability {}, next lsn {}, {} records since checkpoint, \
                         {} wal bytes, {} identity entries ({})",
                        s.durability.as_str(),
                        s.next_lsn,
                        s.records_since_reset,
                        s.wal_bytes,
                        s.identity_entries,
                        s.dir.display(),
                    );
                }
            }
        }
        ".checkpoint" => match session.checkpoint() {
            Ok(0) => println!("-- nothing to checkpoint (no durable databases)"),
            Ok(n) => println!("-- checkpointed {n} database(s); WALs truncated"),
            Err(e) => eprintln!("error: {e}"),
        },
        other => eprintln!("unknown meta command `{other}` (try `.help`)"),
    }
    true
}

/// Validates a `.faults arm SITE SCHED ACTION` triple against the compiled
/// site list (the registry wants `&'static str` names, which conveniently
/// forces validation).
fn parse_arm(
    site: &str,
    sched: &str,
    action: &str,
) -> Result<(&'static str, faults::FaultSchedule, faults::FaultAction), String> {
    let site = FAULT_SITES
        .iter()
        .find(|s| **s == site)
        .copied()
        .ok_or_else(|| format!("unknown site `{site}` (see `.faults sites`)"))?;
    let schedule = if let Some(n) = sched.strip_prefix("nth:") {
        faults::FaultSchedule::Nth(n.parse().map_err(|_| format!("bad nth `{n}`"))?)
    } else if let Some(n) = sched.strip_prefix("from:") {
        faults::FaultSchedule::From(n.parse().map_err(|_| format!("bad from `{n}`"))?)
    } else if let Some(p) = sched.strip_prefix("p:") {
        let p: f64 = p.parse().map_err(|_| format!("bad probability `{p}`"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} out of [0,1]"));
        }
        faults::FaultSchedule::Probability(p)
    } else {
        return Err(format!("bad schedule `{sched}` (nth:N, from:N, p:0.5)"));
    };
    let action = match action {
        "error" => faults::FaultAction::Error,
        "panic" => faults::FaultAction::Panic,
        _ => {
            let ms = action
                .strip_prefix("delay:")
                .and_then(|m| m.parse::<u64>().ok())
                .ok_or_else(|| format!("bad action `{action}` (error, panic, delay:MS)"))?;
            faults::FaultAction::Delay(std::time::Duration::from_millis(ms))
        }
    };
    Ok((site, schedule, action))
}

fn run(session: &mut Session, budget: &BudgetSpec, src: &str) {
    // Each statement gets a fresh budget so limits measure one statement,
    // not the whole session.
    let result = if budget.is_off() {
        session.execute(src)
    } else {
        objects_and_views::query::budget::with(Arc::new(budget.build()), || session.execute(src))
    };
    match result {
        Ok(outcomes) => {
            for o in outcomes {
                match o {
                    Outcome::Done => {}
                    Outcome::Value(v) => println!("{v}"),
                    Outcome::Notice(n) => println!("-- {n}"),
                }
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn load_file(session: &mut Session, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    for o in session.execute(&text)? {
        match o {
            Outcome::Done => {}
            Outcome::Value(v) => println!("{v}"),
            Outcome::Notice(n) => println!("-- {n}"),
        }
    }
    Ok(())
}

/// `.engine` argument → mode; `None` means "print the usage line".
fn parse_engine_mode(arg: &str) -> Option<EngineMode> {
    match arg {
        "compiled" => Some(EngineMode::Compiled),
        "interp" => Some(EngineMode::Interp),
        "auto" => Some(EngineMode::Auto),
        _ => None,
    }
}

fn engine_mode_name(mode: EngineMode) -> &'static str {
    match mode {
        EngineMode::Auto => "auto",
        EngineMode::Compiled => "compiled",
        EngineMode::Interp => "interp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every meta command the shell dispatches documents itself in `.help`.
    #[test]
    fn help_documents_every_meta_command() {
        for cmd in [
            ".help",
            ".schema",
            ".use",
            ".load",
            ".dump",
            ".views",
            ".save",
            ".explain",
            ".analyze",
            ".plan",
            ".metrics",
            ".workload",
            ".slowlog",
            ".stats",
            ".trace",
            ".faults",
            ".budget",
            ".engine",
            ".planner",
            ".wal",
            ".checkpoint",
            ".quit",
        ] {
            assert!(HELP.contains(cmd), "`.help` must document `{cmd}`");
        }
        // The usage line shown for a bad `.engine` argument matches the
        // modes the parser actually accepts.
        assert!(HELP.contains(".engine compiled | interp | auto"));
    }

    #[test]
    fn engine_mode_arguments_parse_and_round_trip() {
        for (arg, mode) in [
            ("compiled", EngineMode::Compiled),
            ("interp", EngineMode::Interp),
            ("auto", EngineMode::Auto),
        ] {
            assert_eq!(parse_engine_mode(arg), Some(mode));
            assert_eq!(engine_mode_name(mode), arg);
        }
        assert_eq!(parse_engine_mode("bytecode"), None);
        assert_eq!(parse_engine_mode(""), None);
    }

    #[test]
    fn fault_arm_arguments_validate() {
        assert!(parse_arm("query.scan_chunk", "nth:2", "error").is_ok());
        assert!(parse_arm("no.such.site", "nth:2", "error").is_err());
        assert!(parse_arm("query.scan_chunk", "always", "error").is_err());
        assert!(parse_arm("query.scan_chunk", "nth:2", "explode").is_err());
    }
}
