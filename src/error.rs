//! The unified workspace error.
//!
//! Each layer has its own error enum (`OodbError`, `QueryError`,
//! `ViewError`) with `From` conversions along the dependency edges.
//! [`Error`] flattens the three behind one type so application code using
//! the umbrella crate can `?` across layers and walk a single
//! [`std::error::Error::source`] chain.

use std::fmt;

use crate::oodb::OodbError;
use crate::query::QueryError;
use crate::views::ViewError;

/// Any error produced by the workspace layers.
///
/// `source()` returns the wrapped layer error, which in turn chains to the
/// error that caused it (a `ViewError` wrapping a `QueryError` wrapping an
/// `OodbError` yields a three-link chain).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An error from the data model / object store layer.
    Oodb(OodbError),
    /// An error from the query language layer.
    Query(QueryError),
    /// An error from the view mechanism.
    View(ViewError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Oodb(e) => write!(f, "oodb: {e}"),
            Error::Query(e) => write!(f, "query: {e}"),
            Error::View(e) => write!(f, "view: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Oodb(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::View(e) => Some(e),
        }
    }
}

impl From<OodbError> for Error {
    fn from(e: OodbError) -> Error {
        Error::Oodb(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Error {
        Error::Query(e)
    }
}

impl From<ViewError> for Error {
    fn from(e: ViewError) -> Error {
        Error::View(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chains_through_layers() {
        let base = OodbError::UnknownClass(crate::oodb::sym("Ghost"));
        let view: ViewError = base.into();
        let unified: Error = view.into();
        // Error -> ViewError -> OodbError.
        let s1 = unified.source().expect("layer error");
        assert!(s1.downcast_ref::<ViewError>().is_some());
        let s2 = s1.source().expect("cause");
        assert!(s2.downcast_ref::<OodbError>().is_some());
        assert!(s2.source().is_none());
    }

    #[test]
    fn display_names_the_layer() {
        let e: Error = QueryError::eval("boom").into();
        assert!(e.to_string().starts_with("query: "));
    }

    #[test]
    fn resource_exhausted_chains_to_the_breach() {
        let budget = crate::query::Budget::new().with_max_steps(0);
        let q = budget.step(0).expect_err("zero-step budget must breach");
        assert!(matches!(q, QueryError::ResourceExhausted(_)));
        let unified: Error = q.into();
        let s1 = unified.source().expect("layer error");
        let s2 = s1.source().expect("breach");
        assert!(s2.downcast_ref::<crate::query::BudgetBreach>().is_some());
        assert!(s2.to_string().contains("steps"));
    }

    #[test]
    fn cancelled_chains_to_the_breach() {
        let budget = crate::query::Budget::new().with_deadline_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let q = budget
            .check_deadline()
            .expect_err("expired deadline must cancel");
        assert!(matches!(q, QueryError::Cancelled(_)));
        assert!(!q.is_transient(), "budget breaches are not retryable");
        let unified: Error = q.into();
        let s1 = unified.source().expect("layer error");
        let s2 = s1.source().expect("breach");
        assert!(s2.downcast_ref::<crate::query::BudgetBreach>().is_some());
    }

    #[test]
    fn injected_fault_chains_through_every_layer() {
        let fault = crate::oodb::InjectedFault {
            site: "store.update",
            hit: 1,
        };
        let v: ViewError = OodbError::Fault(fault).into();
        assert!(v.is_transient());
        let unified: Error = v.into();
        // Error -> ViewError -> OodbError -> InjectedFault.
        let s1 = unified.source().expect("view error");
        let s2 = s1.source().expect("oodb error");
        let s3 = s2.source().expect("injected fault");
        assert!(s3.downcast_ref::<crate::oodb::InjectedFault>().is_some());
        assert!(s3.to_string().contains("store.update"));
    }

    #[test]
    fn degraded_chains_to_its_cause() {
        let cause = ViewError::Oodb(OodbError::Fault(crate::oodb::InjectedFault {
            site: "view.population_recompute",
            hit: 3,
        }));
        let degraded = ViewError::Degraded {
            class: crate::oodb::sym("Adult"),
            attempts: 3,
            cause: Box::new(cause),
        };
        assert!(degraded.is_transient(), "degraded keeps the cause's nature");
        let unified: Error = degraded.into();
        // Error -> Degraded -> cause ViewError -> OodbError -> InjectedFault.
        let mut chain = Vec::new();
        let mut cur: &dyn std::error::Error = &unified;
        while let Some(next) = cur.source() {
            chain.push(next.to_string());
            cur = next;
        }
        assert_eq!(chain.len(), 4, "chain: {chain:?}");
        assert!(unified.to_string().contains("`Adult`"));
        assert!(chain.last().unwrap().contains("view.population_recompute"));
    }

    #[test]
    fn worker_panic_is_a_typed_error() {
        let q = QueryError::Panicked {
            site: "query.scan_chunk",
            msg: "boom".into(),
        };
        let unified: Error = q.into();
        assert!(unified.to_string().contains("query.scan_chunk"));
    }
}
