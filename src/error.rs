//! The unified workspace error.
//!
//! Each layer has its own error enum (`OodbError`, `QueryError`,
//! `ViewError`) with `From` conversions along the dependency edges.
//! [`Error`] flattens the three behind one type so application code using
//! the umbrella crate can `?` across layers and walk a single
//! [`std::error::Error::source`] chain.

use std::fmt;

use crate::oodb::OodbError;
use crate::query::QueryError;
use crate::views::ViewError;

/// Any error produced by the workspace layers.
///
/// `source()` returns the wrapped layer error, which in turn chains to the
/// error that caused it (a `ViewError` wrapping a `QueryError` wrapping an
/// `OodbError` yields a three-link chain).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An error from the data model / object store layer.
    Oodb(OodbError),
    /// An error from the query language layer.
    Query(QueryError),
    /// An error from the view mechanism.
    View(ViewError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Oodb(e) => write!(f, "oodb: {e}"),
            Error::Query(e) => write!(f, "query: {e}"),
            Error::View(e) => write!(f, "view: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Oodb(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::View(e) => Some(e),
        }
    }
}

impl From<OodbError> for Error {
    fn from(e: OodbError) -> Error {
        Error::Oodb(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Error {
        Error::Query(e)
    }
}

impl From<ViewError> for Error {
    fn from(e: ViewError) -> Error {
        Error::View(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chains_through_layers() {
        let base = OodbError::UnknownClass(crate::oodb::sym("Ghost"));
        let view: ViewError = base.into();
        let unified: Error = view.into();
        // Error -> ViewError -> OodbError.
        let s1 = unified.source().expect("layer error");
        assert!(s1.downcast_ref::<ViewError>().is_some());
        let s2 = s1.source().expect("cause");
        assert!(s2.downcast_ref::<OodbError>().is_some());
        assert!(s2.source().is_none());
    }

    #[test]
    fn display_names_the_layer() {
        let e: Error = QueryError::eval("boom").into();
        assert!(e.to_string().starts_with("query: "));
    }
}
