//! Failure injection: every misuse must fail with a precise error and
//! leave the system in a usable state.

use objects_and_views::oodb::{sym, OodbError, System, Value};
use objects_and_views::query::{execute_script, QueryError};
use objects_and_views::views::{Session, ViewDef, ViewError};

fn base() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database D;
        class Person type [Name: string, Age: integer];
        object #1 in Person value [Name: "A", Age: 10];
        name a = #1;
        "#,
    )
    .unwrap();
    sys
}

#[test]
fn ill_typed_ddl_is_rejected() {
    let mut sys = System::new();
    // Unknown type name.
    let err = execute_script(&mut sys, "database X; class C type [F: wibble];").unwrap_err();
    assert!(err.to_string().contains("unknown class `wibble`"));
    // Unknown parent.
    let err = execute_script(&mut sys, "database X2; class C inherits Ghost;").unwrap_err();
    assert!(err.to_string().contains("unknown class `Ghost`"));
    // Ill-typed object value.
    let err = execute_script(
        &mut sys,
        r#"database X3; class C type [N: integer]; object #1 in C value [N: "nope"];"#,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        QueryError::Oodb(OodbError::TypeMismatch { .. })
    ));
}

#[test]
fn parse_errors_carry_positions() {
    let mut sys = System::new();
    let err = execute_script(&mut sys, "database D;\nclass C type [X integer];").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse error at 2:"), "got: {msg}");
}

#[test]
fn incompatible_override_is_rejected_and_rolled_back() {
    let mut sys = base();
    let err = execute_script(
        &mut sys,
        "database D; class Liar inherits Person type [Age: string];",
    )
    .unwrap_err();
    assert!(matches!(
        err,
        QueryError::Oodb(OodbError::IncompatibleOverride { .. })
    ));
    // Scripts are not transactional (standard for DDL): the class shell may
    // exist, but the offending attribute was rolled back and the schema is
    // still consistent and usable.
    let db = sys.database(sym("D")).unwrap();
    {
        let d = db.read();
        if let Some(liar) = d.schema.class_by_name(sym("Liar")) {
            assert!(d.schema.class(liar).own_attr(sym("Age")).is_none());
            // Inherited Age is still the integer one.
            let attrs = d.schema.visible_attrs(liar);
            assert_eq!(
                attrs[&sym("Age")].1.sig.ty,
                objects_and_views::oodb::Type::Int
            );
        }
    }
    execute_script(&mut sys, "database D; class Ok inherits Person;").unwrap();
}

#[test]
fn view_misuses_each_have_a_precise_error() {
    type Check = fn(&ViewError) -> bool;
    let sys = base();
    let cases: &[(&str, Check)] = &[
        (
            "create view V; import all classes from database Nowhere;",
            |e| matches!(e, ViewError::Oodb(OodbError::UnknownDatabase(_))),
        ),
        ("create view V; import class Ghost from database D;", |e| {
            matches!(e, ViewError::Oodb(OodbError::UnknownClass(_)))
        }),
        (
            "create view V; import all classes from database D; \
             hide attribute Wings in class Person;",
            |e| matches!(e, ViewError::Oodb(OodbError::UnknownAttr { .. })),
        ),
        (
            "create view V; import all classes from database D; \
             class Bad includes (select [N: P.Name] from P in Person);",
            |e| matches!(e, ViewError::NonObjectPopulation { .. }),
        ),
        (
            "create view V; import all classes from database D; \
             class Bad includes imaginary (select P from P in Person);",
            |e| matches!(e, ViewError::NonTuplePopulation { .. }),
        ),
        (
            "create view V; import all classes from database D; \
             class Bad includes Person, imaginary (select [N: P.Name] from P in Person);",
            |e| matches!(e, ViewError::MixedImaginary(_)),
        ),
        (
            "create view V; import all classes from database D; \
             attribute Fresh of type integer in class Person;",
            |e| matches!(e, ViewError::Definition(_)),
        ),
    ];
    for (script, check) in cases {
        let err = ViewDef::from_script(script)
            .unwrap()
            .binder(&sys)
            .bind()
            .expect_err(script);
        assert!(check(&err), "script {script:?} gave {err:?}");
    }
}

#[test]
fn virtual_class_write_protections() {
    let sys = base();
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database D;
        class Young includes (select P from Person where P.Age < 21);
        class Tag includes imaginary (select [N: P.Name] from P in Person);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert!(matches!(
        view.insert(sym("Young"), Value::empty_tuple()),
        Err(ViewError::VirtualInsert(_))
    ));
    assert!(matches!(
        view.insert(sym("Tag"), Value::empty_tuple()),
        Err(ViewError::VirtualInsert(_))
    ));
    let tag = view.extent_of(sym("Tag")).unwrap()[0];
    assert!(matches!(
        view.update_attr(tag, sym("N"), Value::str("x")),
        Err(ViewError::CoreAttrUpdate { .. })
    ));
    assert!(matches!(
        view.delete(tag),
        Err(ViewError::ImaginaryUpdate(_))
    ));
}

#[test]
fn parameterized_arity_and_unknown_template() {
    let sys = base();
    let view = ViewDef::from_script(
        "create view V; import all classes from database D; \
         class ByAge(A) includes (select P from Person where P.Age = A);",
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert!(view.query("count(ByAge(1, 2))").is_err());
    assert!(view.query("count(NotATemplate(1))").is_err());
    // The error did not poison later use.
    assert_eq!(view.query("count(ByAge(10))").unwrap(), Value::Int(1));
}

#[test]
fn sessions_survive_errors() {
    let mut s = Session::new();
    s.execute(
        r#"database D; class Person type [Name: string, Age: integer];
           object #1 in Person value [Name: "A", Age: 30];"#,
    )
    .unwrap();
    // A stream of bad statements…
    assert!(s.execute("select X from X in Nope;").is_err());
    assert!(s.execute("class Broken includes Person;").is_err()); // no view focused
    assert!(s.execute("insert Person value [Wings: 2];").is_err());
    // …and the session still works.
    assert_eq!(
        s.execute("count(Person);").unwrap(),
        vec![objects_and_views::views::Outcome::Value(Value::Int(1))]
    );
}

#[test]
fn journal_overflow_never_corrupts_populations() {
    use objects_and_views::views::{Materialization, ViewOptions};
    let sys = base();
    {
        let db = sys.database(sym("D")).unwrap();
        db.write().store.set_journal_cap(1);
    }
    let view = ViewDef::from_script(
        "create view V; import all classes from database D; \
         class Young includes (select P from Person where P.Age < 21);",
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .build(),
    )
    .bind()
    .unwrap();
    let db = sys.database(sym("D")).unwrap();
    for i in 0..20 {
        {
            let mut d = db.write();
            let person = d.schema.class_by_name(sym("Person")).unwrap();
            d.create_object(
                person,
                Value::tuple([
                    ("Name", Value::str(&format!("p{i}"))),
                    ("Age", Value::Int(i)),
                ]),
            )
            .unwrap();
        }
        // Population always equals a fresh filter of the base.
        let expected = {
            let d = db.read();
            let person = d.schema.class_by_name(sym("Person")).unwrap();
            d.deep_extent(person)
                .into_iter()
                .filter(
                    |&o| matches!(d.stored_attr(o, sym("Age")).unwrap(), Value::Int(a) if *a < 21),
                )
                .count()
        };
        assert_eq!(view.extent_of(sym("Young")).unwrap().len(), expected);
    }
}

#[test]
fn deep_recursion_is_cut_off_not_a_stack_overflow() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        "database R; class C type [X: integer]; \
         attribute Loop of type integer in class C has value self.Loop + 1; \
         object #1 in C value [X: 0]; name c = #1;",
    )
    .unwrap();
    let db = sys.database(sym("R")).unwrap();
    let err = objects_and_views::query::run_query(&*db.read(), "c.Loop").unwrap_err();
    assert!(err.to_string().contains("depth limit"));
}

#[test]
fn dangling_references_are_detectable_and_null_safe() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database D;
        class Node type [Label: string, Next: Node];
        object #1 in Node value [Label: "a", Next: #2];
        object #2 in Node value [Label: "b"];
        name a = #1;
        name b = #2;
        "#,
    )
    .unwrap();
    let db = sys.database(sym("D")).unwrap();
    {
        let b = db.read().named(sym("b")).unwrap();
        db.write().delete_object(b).unwrap();
    }
    let d = db.read();
    assert_eq!(d.dangling_refs().len(), 1);
    // Dereferencing the dangling pointer is an error, not UB.
    let err = objects_and_views::query::run_query(&*d, "a.Next.Label").unwrap_err();
    assert!(matches!(err, QueryError::Oodb(OodbError::UnknownObject(_))));
}
