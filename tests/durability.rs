//! Durable-session integration tests: WAL + snapshot recovery through the
//! full stack (session → view → database → store), with the paper's
//! headline guarantee on top — **imaginary-object identity is stable
//! across process restarts**. An imaginary oid is a name a user may have
//! written down; reopening the session must hand back the same oid for the
//! same core tuple.

use std::collections::BTreeMap;
use std::path::PathBuf;

use objects_and_views::oodb::{Oid, Tuple};
use objects_and_views::prelude::*;

/// A fresh scratch directory under the system temp dir (no tempfile crate:
/// pid + tag keep concurrent test binaries apart).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ov-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds the standard fixture in a durable session: a `Staff` base with
/// people, and a view stacking a virtual class and an imaginary class.
fn build_fixture(session: &mut Session) {
    session
        .execute(
            r#"
            database Staff;
            class Person type [Name: string, Age: integer, City: string];
            object #0 in Person value [Name: "Ada", Age: 36, City: "London"];
            object #1 in Person value [Name: "Bob", Age: 17, City: "Paris"];
            object #2 in Person value [Name: "Cleo", Age: 64, City: "London"];
            name ada = #0;
            create view V;
            import all classes from database Staff;
            class Adult includes (select P from Person where P.Age >= 21);
            class CityTag includes imaginary (select [City: P.City] from P in Person);
            "#,
        )
        .unwrap();
}

/// The identity table the durable core would recover for view `V`, as a
/// comparable map. `(class name, core tuple) → oid` is exactly the mapping
/// that must survive a restart.
fn identity_map(session: &Session) -> BTreeMap<(String, String), Oid> {
    let db = session.system().database(sym("Staff")).unwrap();
    let db = db.read();
    let core = db.durable_core().expect("durable database");
    core.identity_for_view(sym("V"))
        .into_iter()
        .map(|(class, tuple, oid): (Symbol, Tuple, Oid)| {
            ((class.to_string(), format!("{tuple:?}")), oid)
        })
        .collect()
}

#[test]
fn durable_session_recovers_data_views_and_imaginary_identity() {
    let dir = scratch("headline");
    let (saved, identity_before, tags_before) = {
        let mut s = Session::open(&dir, Durability::Wal).unwrap();
        build_fixture(&mut s);
        // Materialize the imaginary extent so identity exists to persist.
        let tags: Vec<Oid> = s.view(sym("V")).unwrap().extent_of(sym("CityTag")).unwrap();
        assert_eq!(tags.len(), 2, "two distinct cities");
        (s.save(), identity_map(&s), tags)
        // Dropped without checkpoint: recovery must come from the WAL alone.
    };

    let mut s = Session::open(&dir, Durability::Wal).unwrap();
    // Base data, names, schema, and view definitions all round-tripped.
    assert_eq!(
        s.save(),
        saved,
        "recovered session diverged from the saved one"
    );
    // Queries over recovered base data work.
    let outcomes = s.execute("database Staff; count(Person);").unwrap();
    assert_eq!(outcomes.last(), Some(&Outcome::Value(Value::Int(3))));
    assert_eq!(s.query(sym("V"), "count(Adult)").unwrap(), Value::Int(2));
    // The imaginary identity table recovered bit-for-bit…
    assert_eq!(
        identity_map(&s),
        identity_before,
        "identity table changed across reopen"
    );
    // …and a fresh population hands back the *same* oids, in any order.
    let mut tags_after: Vec<Oid> = s.view(sym("V")).unwrap().extent_of(sym("CityTag")).unwrap();
    let mut tags_before = tags_before;
    tags_before.sort();
    tags_after.sort();
    assert_eq!(
        tags_after, tags_before,
        "imaginary oids changed across reopen"
    );
    // The recovered session keeps working: new writes land and propagate.
    s.execute(r#"database Staff; insert Person value [Name: "Dan", Age: 41, City: "Roma"];"#)
        .unwrap();
    assert_eq!(s.query(sym("V"), "count(Adult)").unwrap(), Value::Int(3));
    assert_eq!(
        s.view(sym("V"))
            .unwrap()
            .extent_of(sym("CityTag"))
            .unwrap()
            .len(),
        3
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_wal_and_recovers_identically() {
    let dir = scratch("checkpoint");
    let saved = {
        let mut s = Session::open(&dir, Durability::Wal).unwrap();
        build_fixture(&mut s);
        s.view(sym("V")).unwrap().extent_of(sym("CityTag")).unwrap();
        assert_eq!(s.checkpoint().unwrap(), 1, "one durable database");
        // Post-checkpoint writes land in the (now short) WAL tail.
        s.execute(r#"database Staff; insert Person value [Name: "Eve", Age: 29, City: "Oslo"];"#)
            .unwrap();
        s.save()
    };
    let wal = dir.join("databases/Staff").join("wal.ovl");
    assert!(wal.exists(), "WAL file missing after checkpoint");
    let s = Session::open(&dir, Durability::Wal).unwrap();
    assert_eq!(s.save(), saved, "snapshot + WAL tail recovery diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: reopening a database must re-seat the journal
/// floor at the recovered version, **not** at zero. A dependent view
/// holding a pre-restart version must get `None` from `changes_since`
/// (forcing a full recompute) rather than a bogus empty delta.
#[test]
fn reopen_reseats_journal_floor_for_stale_view_deltas() {
    let dir = scratch("floor");
    let version_before = {
        let mut s = Session::open(&dir, Durability::Wal).unwrap();
        build_fixture(&mut s);
        let db = s.system().database(sym("Staff")).unwrap();
        let v = db.read().store.version();
        assert!(v > 0);
        v
    };
    let s = Session::open(&dir, Durability::Wal).unwrap();
    let db = s.system().database(sym("Staff")).unwrap();
    let db = db.read();
    assert_eq!(
        db.store.version(),
        version_before,
        "recovery must not rewind the store version"
    );
    // A stale pre-restart version (e.g. a view's remembered generation)
    // is below the recovered floor: no delta, full recompute.
    assert_eq!(
        db.store.changes_since(0),
        None,
        "journal floor was reset to 0 on reopen: stale readers would get an empty delta"
    );
    // The current version is a clean empty delta, as always.
    assert_eq!(db.store.changes_since(version_before), Some(Vec::new()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn walsync_session_survives_crash_without_checkpoint() {
    let dir = scratch("walsync");
    {
        let mut s = Session::open(&dir, Durability::WalSync).unwrap();
        build_fixture(&mut s);
        // No checkpoint, no clean shutdown: everything rides the WAL.
    }
    let mut s = Session::open(&dir, Durability::WalSync).unwrap();
    assert_eq!(s.query(sym("V"), "count(Adult)").unwrap(), Value::Int(2));
    assert_eq!(
        s.execute("database Staff; ada.Name;").unwrap().pop(),
        Some(Outcome::Value(Value::str("Ada")))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_on_reopen() {
    use std::io::Write as _;
    let dir = scratch("torn");
    let saved = {
        let mut s = Session::open(&dir, Durability::Wal).unwrap();
        build_fixture(&mut s);
        s.save()
    };
    // Simulate a crash mid-append: garbage bytes at the tail of the WAL.
    let wal = dir.join("databases/Staff").join("wal.ovl");
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    drop(f);
    let s = Session::open(&dir, Durability::Wal).unwrap();
    assert_eq!(
        s.save(),
        saved,
        "torn tail must be truncated, committed prefix kept"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_views_script_is_rejected_with_typed_error() {
    let dir = scratch("views-corrupt");
    {
        let mut s = Session::open(&dir, Durability::Wal).unwrap();
        build_fixture(&mut s);
    }
    // Flip view DDL behind the checksum's back.
    let path = dir.join("views.ovq");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.starts_with("-- ovdump"),
        "views.ovq must be a checked dump"
    );
    std::fs::write(&path, text.replace("Adult", "Adolt")).unwrap();
    let Err(err) = Session::open(&dir, Durability::Wal) else {
        panic!("corrupt views.ovq accepted");
    };
    let msg = err.to_string();
    assert!(msg.contains("checksum"), "untyped or wrong error: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_database_file_is_rejected_not_panicking() {
    let dir = scratch("foreign");
    let db_dir = dir.join("databases/Staff");
    std::fs::create_dir_all(&db_dir).unwrap();
    // A foreign snapshot file: recovery must refuse with a typed error.
    std::fs::write(
        db_dir.join("snapshot.ovp"),
        b"#!/bin/sh\n# definitely not a snapshot, but long enough to parse\nexit 1\n",
    )
    .unwrap();
    let Err(err) = Session::open(&dir, Durability::Wal) else {
        panic!("foreign snapshot accepted");
    };
    assert!(!err.to_string().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
