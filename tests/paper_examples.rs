//! Integration tests: the paper's examples driven end-to-end through the
//! textual DDL, spanning all workspace crates.

use objects_and_views::oodb::{sym, System, Value};
use objects_and_views::query::{execute_script, run_query};
use objects_and_views::views::ViewDef;

fn load(script: &str) -> System {
    let mut sys = System::new();
    execute_script(&mut sys, script).expect("script loads");
    sys
}

const STAFF: &str = r#"
    database Staff;
    class Person type [Name: string, Age: integer, Sex: string,
                       City: string, Street: string, Zip_Code: string,
                       Income: integer, Spouse: Person, Children: {Person}];
    class Employee inherits Person type [Salary: integer];
    class Manager inherits Employee type [Budget: integer];
    object #1 in Person value [Name: "Maggy", Age: 66, Sex: "female",
                               City: "London", Street: "10 Downing", Zip_Code: "SW1",
                               Income: 90000, Spouse: #2];
    object #2 in Person value [Name: "Denis", Age: 70, Sex: "male",
                               City: "London", Street: "10 Downing", Zip_Code: "SW1",
                               Income: 4000, Spouse: #1, Children: {#3}];
    object #3 in Person value [Name: "Mark", Age: 12, Sex: "male",
                               City: "London", Street: "10 Downing", Zip_Code: "SW1"];
    object #4 in Employee value [Name: "Tony", Age: 30, Sex: "male", Salary: 50000,
                                 City: "Paris", Street: "Rivoli", Zip_Code: "75001",
                                 Income: 50000];
    object #5 in Manager value [Name: "Boss", Age: 50, Sex: "female", Salary: 120000,
                                City: "Paris", Street: "Rivoli", Zip_Code: "75001",
                                Income: 120000, Budget: 1000000];
    name maggy = #1;
    name denis = #2;
"#;

/// §2 Example 1 through the full pipeline, plus the restructuring the paper
/// sketches right after it (Home/Office → Addresses/Telephones).
#[test]
fn restructuring_attributes() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database D;
        class Contact type [HomeAddress: string, HomePhone: string,
                            OfficeAddress: string, OfficePhone: string];
        object #1 in Contact value [HomeAddress: "10 Downing", HomePhone: "020",
                                    OfficeAddress: "INRIA", OfficePhone: "013"];
        name c = #1;
        "#,
    )
    .unwrap();
    let view = ViewDef::from_script(
        r#"
        create view Regrouped;
        import all classes from database D;
        attribute Addresses in class Contact has value
            [Home: self.HomeAddress, Office: self.OfficeAddress];
        attribute Telephones in class Contact has value
            [Home: self.HomePhone, Office: self.OfficePhone];
        hide attributes HomeAddress, HomePhone, OfficeAddress, OfficePhone
            in class Contact;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query("c.Addresses").unwrap(),
        Value::tuple([
            ("Home", Value::str("10 Downing")),
            ("Office", Value::str("INRIA")),
        ])
    );
    assert_eq!(
        view.query("c.Telephones.Office").unwrap(),
        Value::str("013")
    );
    assert!(view.query("c.HomePhone").is_err(), "components are hidden");
}

/// §3's My_View: imports from two databases.
#[test]
fn my_view_imports_from_two_databases() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Chrysler;
        class Car type [Model: string];
        class Person type [Name: string];
        object #1 in Car value [Model: "Voyager"];
        database Ford;
        class Person type [Name: string];
        object #2 in Person value [Name: "Henry"];
        "#,
    )
    .unwrap();
    let view = ViewDef::from_script(
        r#"
        create view My_View;
        import all classes from database Chrysler;
        import class Person from database Ford as Ford_Person;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query("select C.Model from C in Car").unwrap(),
        Value::set([Value::str("Voyager")])
    );
    assert_eq!(
        view.query("select P.Name from P in Ford_Person").unwrap(),
        Value::set([Value::str("Henry")])
    );
    // The Chrysler Person class is empty but distinct from Ford's.
    assert_eq!(view.query("count(Person)").unwrap(), Value::Int(0));
}

/// The paper's general view structure (§3): imports, classes, attributes,
/// hides — all in one script, end to end.
#[test]
fn full_view_script() {
    let sys = load(STAFF);
    let view = ViewDef::from_script(
        r#"
        create view Tax_Office;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class Senior includes (select A from Adult where A.Age >= 65);
        class Student includes (select P from Person where P.Age < 21);
        class Government_Supported includes Senior, Student,
            (select A in Adult where A.Income < 5000);
        attribute Government_Support_Deduction in class Government_Supported
            has value 1200;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Membership: Maggy+Denis (senior), Mark (student), Denis again (low
    // income) → 3 distinct people.
    assert_eq!(
        view.query("select G.Name from G in Government_Supported")
            .unwrap(),
        Value::set([Value::str("Maggy"), Value::str("Denis"), Value::str("Mark")])
    );
    assert_eq!(
        view.query("maggy.Government_Support_Deduction").unwrap(),
        Value::Int(1200)
    );
    assert!(view.query("select E.Salary from E in Employee").is_err());
}

/// Dump → reload → view: serialization interoperates with the view layer.
#[test]
fn dump_reload_then_view() {
    let sys = load(STAFF);
    let dump = {
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        objects_and_views::oodb::dump_database(&db)
    };
    let sys2 = load(&dump);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        "#,
    )
    .unwrap()
    .binder(&sys2)
    .bind()
    .unwrap();
    assert_eq!(
        view.query("count((select A from A in Adult))").unwrap(),
        Value::Int(4)
    );
    // Relationships survived the round-trip.
    assert_eq!(
        view.query("maggy.Spouse.Name").unwrap(),
        Value::str("Denis")
    );
}

/// Views stack through materialization: base → view → snapshot → view.
#[test]
fn stacked_views_via_materialization() {
    let sys = load(STAFF);
    let first = ViewDef::from_script(
        r#"
        create view First;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        attribute Greeting in class Person has value "hello " ++ self.Name;
        hide attribute Salary in class Employee;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    let snapshot = first.materialize(sym("Level1")).unwrap();
    let mut sys2 = System::new();
    sys2.add_database(snapshot).unwrap();
    // In the snapshot the plain persons who were Adults are *real* in
    // Adult; Tony and Boss stay rooted in Employee/Manager (Adult and
    // Employee are incomparable, and unique root allows only one class).
    let second = ViewDef::from_script(
        r#"
        create view Second;
        import all classes from database Level1;
        class Greeter includes (select A from Adult where A.Age >= 65);
        "#,
    )
    .unwrap()
    .binder(&sys2)
    .bind()
    .unwrap();
    assert_eq!(
        second.query("select G.Greeting from G in Greeter").unwrap(),
        Value::set([Value::str("hello Maggy"), Value::str("hello Denis")])
    );
}

/// Querying base and view side by side: the view never copies data.
#[test]
fn views_share_base_storage() {
    let sys = load(STAFF);
    let view = ViewDef::from_script("create view V; import all classes from database Staff;")
        .unwrap()
        .binder(&sys)
        .bind()
        .unwrap();
    let before_base = {
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        run_query(&*db, "count(Person)").unwrap()
    };
    let before_view = view.query("count(Person)").unwrap();
    assert_eq!(before_base, before_view);
    // Insert through the view; the base sees it immediately, and vice versa.
    view.insert(
        sym("Person"),
        Value::tuple([("Name", Value::str("New")), ("Age", Value::Int(1))]),
    )
    .unwrap();
    let after_base = {
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        run_query(&*db, "count(Person)").unwrap()
    };
    assert_eq!(after_base, Value::Int(6));
    assert_eq!(view.query("count(Person)").unwrap(), Value::Int(6));
}

/// Concurrent readers over one system: views are per-thread, the bases are
/// shared behind `parking_lot` locks.
#[test]
fn concurrent_view_readers() {
    let sys = load(STAFF);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sys_ref = &sys;
            handles.push(scope.spawn(move || {
                let view = ViewDef::from_script(
                    r#"
                    create view V;
                    import all classes from database Staff;
                    class Adult includes (select P from Person where P.Age >= 21);
                    "#,
                )
                .unwrap()
                .binder(sys_ref)
                .bind()
                .unwrap();
                for _ in 0..50 {
                    let n = view.query("count((select A from A in Adult))").unwrap();
                    assert_eq!(n, Value::Int(4));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// The umbrella crate re-exports compose: oodb + query + views + relational
/// in one flow (people stored relationally, joined against an object view).
#[test]
fn relational_and_object_worlds_compose() {
    use objects_and_views::relational::{bridge, Relation, RelationalDb};

    let mut rdb = RelationalDb::new(sym("HR"));
    rdb.create_relation(Relation::new(
        sym("Badge"),
        vec![
            (sym("Owner"), objects_and_views::oodb::Type::Str),
            (sym("Level"), objects_and_views::oodb::Type::Int),
        ],
    ))
    .unwrap();
    rdb.insert(sym("Badge"), vec![Value::str("Maggy"), Value::Int(9)])
        .unwrap();
    rdb.insert(sym("Badge"), vec![Value::str("Tony"), Value::Int(3)])
        .unwrap();
    let (sys, _) = bridge::stage(&rdb).unwrap();
    let view = bridge::object_view(&rdb, &sys).unwrap();
    assert_eq!(
        view.query("select B.Owner from B in Badge where B.Level > 5")
            .unwrap(),
        Value::set([Value::str("Maggy")])
    );
}

/// §5's application list includes "decomposing large objects into several
/// smaller objects": one wide Person splits into shareable NamePart and
/// AddressPart objects.
#[test]
fn decomposing_large_objects() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Wide;
        class Person type [First: string, Last: string,
                           City: string, Street: string, Shoe_Size: integer];
        object #1 in Person value [First: "Maggy", Last: "T",
                                   City: "London", Street: "10 Downing", Shoe_Size: 37];
        object #2 in Person value [First: "Denis", Last: "T",
                                   City: "London", Street: "10 Downing", Shoe_Size: 44];
        name maggy = #1;
        "#,
    )
    .unwrap();
    let view = ViewDef::from_script(
        r#"
        create view Decomposed;
        import all classes from database Wide;
        class NamePart includes imaginary
            (select [First: P.First, Last: P.Last] from P in Person);
        class AddressPart includes imaginary
            (select [City: P.City, Street: P.Street] from P in Person);
        attribute TheName in class Person has value
            (select the N from N in NamePart
             where N.First = self.First and N.Last = self.Last);
        attribute TheAddress in class Person has value
            (select the A from A in AddressPart
             where A.City = self.City and A.Street = self.Street);
        hide attributes First, Last, City, Street in class Person;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Two people, two distinct name parts, ONE shared address part.
    assert_eq!(view.query("count(NamePart)").unwrap(), Value::Int(2));
    assert_eq!(view.query("count(AddressPart)").unwrap(), Value::Int(1));
    assert_eq!(
        view.query("maggy.TheName.First").unwrap(),
        Value::str("Maggy")
    );
    assert_eq!(
        view.query("maggy.TheAddress.City").unwrap(),
        Value::str("London")
    );
    // The wide attributes are hidden; the decomposition is total.
    assert!(view.query("maggy.First").is_err());
    // Shoe_Size survives untouched.
    assert_eq!(view.query("maggy.Shoe_Size").unwrap(), Value::Int(37));
}

/// §4.1's flexibility argument for behavioral generalization: "the
/// introduction of a class Boat (with appropriate price and discount
/// attributes) would require the programmer to change the definition of
/// the class On_Sale_Bis. This is not needed with the behavioral
/// definition." Rebinding the same unchanged definition picks Boat up.
#[test]
fn behavioral_generalization_admits_later_classes_unchanged() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Market;
        class On_Sale_Spec type [Price: float, Discount: integer];
        class Car type [Price: float, Discount: integer];
        object #1 in Car value [Price: 100.0, Discount: 5];
        "#,
    )
    .unwrap();
    let behavioral = ViewDef::from_script(
        "create view V; import all classes from database Market; \
         class On_Sale includes like On_Sale_Spec;",
    )
    .unwrap();
    let by_name = ViewDef::from_script(
        "create view V2; import all classes from database Market; \
         class On_Sale_Bis includes Car;",
    )
    .unwrap();
    assert_eq!(
        behavioral
            .binder(&sys)
            .bind()
            .unwrap()
            .query("count(On_Sale)")
            .unwrap(),
        Value::Int(1)
    );
    // The schema evolves: Boat appears.
    execute_script(
        &mut sys,
        r#"
        database Market;
        class Boat type [Price: float, Discount: integer, Draft: float];
        object #1 in Boat value [Price: 9.5, Discount: 1, Draft: 2.0];
        "#,
    )
    .unwrap();
    // Unchanged behavioral definition: Boat admitted automatically.
    assert_eq!(
        behavioral
            .binder(&sys)
            .bind()
            .unwrap()
            .query("count(On_Sale)")
            .unwrap(),
        Value::Int(2)
    );
    // The by-name definition misses it until someone edits it.
    assert_eq!(
        by_name
            .binder(&sys)
            .bind()
            .unwrap()
            .query("count(On_Sale_Bis)")
            .unwrap(),
        Value::Int(1)
    );
}

/// "In general, given n virtual classes, they may overlap in O(2^n)
/// different ways … an object may simultaneously belong to several
/// incomparable virtual classes" (§4.2).
#[test]
fn objects_belong_to_many_overlapping_virtual_classes() {
    let sys = load(STAFF);
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 90000);
        class Old includes (select P from Person where P.Age >= 60);
        class Londoner includes (select P from Person where P.City = "London");
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // Maggy is simultaneously in all three incomparable classes.
    for class in ["Rich", "Old", "Londoner"] {
        assert_eq!(
            view.query(&format!("maggy isa {class}")).unwrap(),
            Value::Bool(true),
            "maggy should be in {class}"
        );
    }
    // And the overlaps need not be declared as classes to be queried.
    assert_eq!(
        view.query("count((select P from P in Rich where P in Old and P in Londoner))")
            .unwrap(),
        Value::Int(1)
    );
}
