//! Integration tests for the view dependency graph and the typed catalog
//! DDL API: views stacked on views, cycle rejection at bind time,
//! RESTRICT drops, atomic revalidation with rollback, and topological
//! (dependents-only) propagation of base schema changes.

use objects_and_views::oodb::sym;
use objects_and_views::prelude::*;
use objects_and_views::views::ViewError;

fn staff_session() -> Session {
    let mut s = Session::new();
    s.execute(
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, Income: integer];
        object #1 in Person value [Name: "Maggy", Age: 66, Income: 120];
        object #2 in Person value [Name: "Bart", Age: 10, Income: 0];
        object #3 in Person value [Name: "Tony", Age: 30, Income: 80];
        "#,
    )
    .unwrap();
    s
}

/// Staff → Adults(Adult) → Earners(Rich) → Top(Elite): a 3-deep stack.
fn stacked_session() -> Session {
    let mut s = staff_session();
    s.execute(
        r#"
        create view Adults;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        create view Earners;
        import all classes from view Adults;
        class Rich includes (select A from Adult where A.Income >= 100);
        create view Top;
        import all classes from view Earners;
        class Elite includes (select R from Rich where R.Age >= 60);
        "#,
    )
    .unwrap();
    s
}

#[test]
fn views_stack_three_levels_deep() {
    let s = stacked_session();
    assert_eq!(
        s.query(sym("Adults"), "count(Adult)").unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        s.query(sym("Earners"), "count(Rich)").unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        s.query(sym("Top"), "select E.Name from E in Elite")
            .unwrap(),
        Value::set([Value::str("Maggy")])
    );
}

#[test]
fn dependency_graph_tracks_the_stack() {
    let s = stacked_session();
    let g = s.dependency_graph();
    assert_eq!(
        g.transitive_dependents(DepTarget::Database(sym("Staff"))),
        vec![sym("Adults"), sym("Earners"), sym("Top")]
    );
    assert_eq!(
        g.transitive_dependents(DepTarget::View(sym("Earners"))),
        vec![sym("Top")]
    );
    // Edges carry the class names actually read.
    let deps = s.view(sym("Earners")).unwrap().dependencies().to_vec();
    assert!(deps
        .iter()
        .any(|e| { e.on == DepTarget::View(sym("Adults")) && e.classes.contains(&sym("Adult")) }));
}

#[test]
fn describe_and_explain_surface_dependencies() {
    let s = stacked_session();
    let d = s.describe();
    assert!(d.contains("depends on database Staff"), "got: {d}");
    assert!(
        d.contains("depends on view Adults (reads Adult"),
        "got: {d}"
    );
    assert!(d.contains("health: healthy"), "got: {d}");
    let e = s.explain(sym("Earners"), "count(Rich)").unwrap();
    assert!(e.contains("depends:   view Adults"), "got: {e}");
}

#[test]
fn self_import_rejected() {
    let mut s = staff_session();
    s.execute("create view Loop;").unwrap();
    let err = s.execute("import all classes from view Loop;").unwrap_err();
    assert!(
        matches!(err, ViewError::CyclicViewDependency { view, .. } if view == sym("Loop")),
        "got: {err}"
    );
    // The failed statement rolled back; the session stays usable.
    s.execute("import all classes from database Staff;")
        .unwrap();
    assert_eq!(
        s.query(sym("Loop"), "count(Person)").unwrap(),
        Value::Int(3)
    );
}

#[test]
fn three_node_cycle_rejected_on_redefinition() {
    let mut s = stacked_session();
    // Redefine Adults to read Top: would close Adults → Top → Earners →
    // Adults.
    let candidate =
        ViewDef::from_script("create view Adults; import all classes from view Top;").unwrap();
    let err = s.catalog().redefine_view(candidate).unwrap_err();
    assert!(
        matches!(err, ViewError::CyclicViewDependency { .. }),
        "got: {err}"
    );
    // Nothing changed: the stack still answers.
    assert_eq!(s.query(sym("Top"), "count(Elite)").unwrap(), Value::Int(1));
}

#[test]
fn drop_view_is_restricted_by_dependents() {
    let mut s = stacked_session();
    let outcome = s.catalog().drop_view("Adults").unwrap();
    assert_eq!(
        outcome,
        DdlOutcome::Rejected {
            name: sym("Adults"),
            dependents: vec![sym("Earners")],
        }
    );
    // Rejected means untouched.
    assert_eq!(
        s.query(sym("Adults"), "count(Adult)").unwrap(),
        Value::Int(2)
    );
    // Dropping from the top down works.
    assert_eq!(
        s.catalog().drop_view("Top").unwrap(),
        DdlOutcome::Dropped(sym("Top"))
    );
    assert_eq!(
        s.catalog().drop_view("Earners").unwrap(),
        DdlOutcome::Dropped(sym("Earners"))
    );
    assert_eq!(
        s.catalog().drop_view("Adults").unwrap(),
        DdlOutcome::Dropped(sym("Adults"))
    );
    assert!(s.view(sym("Adults")).is_none());
    assert!(s.catalog().drop_view("Adults").is_err());
}

#[test]
fn redefinition_revalidates_dependents_atomically() {
    let mut s = stacked_session();
    // Renaming Adult → Grown breaks Earners (`select A from Adult …`), so
    // the whole redefinition must roll back.
    let bad = ViewDef::from_script(
        "create view Adults; \
         import all classes from database Staff; \
         class Grown includes (select P from Person where P.Age >= 21);",
    )
    .unwrap();
    let err = s.catalog().redefine_view(bad).unwrap_err();
    let ViewError::RevalidationFailed {
        changed, dependent, ..
    } = &err
    else {
        panic!("expected RevalidationFailed, got: {err}");
    };
    assert_eq!((*changed, *dependent), (sym("Adults"), sym("Earners")));
    // Rolled back: the old definition (and the whole stack) still serves.
    assert_eq!(
        s.query(sym("Adults"), "count(Adult)").unwrap(),
        Value::Int(2)
    );
    assert_eq!(s.query(sym("Top"), "count(Elite)").unwrap(), Value::Int(1));

    // A compatible redefinition commits and reports its blast radius.
    let good = ViewDef::from_script(
        "create view Adults; \
         import all classes from database Staff; \
         class Adult includes (select P from Person where P.Age >= 18);",
    )
    .unwrap();
    assert_eq!(
        s.catalog().redefine_view(good).unwrap(),
        DdlOutcome::Revalidated {
            changed: sym("Adults"),
            dependents: 2,
        }
    );
    assert_eq!(s.query(sym("Top"), "count(Elite)").unwrap(), Value::Int(1));
}

#[test]
fn define_class_revalidates_the_database_dependents() {
    let mut s = stacked_session();
    let outcome = s
        .catalog()
        .define_class(
            "Staff",
            "attribute Doubled in class Person has value self.Age * 2;",
        )
        .unwrap();
    assert_eq!(
        outcome,
        DdlOutcome::Revalidated {
            changed: sym("Staff"),
            dependents: 3,
        }
    );
    // The new attribute is visible through every level of the stack.
    assert_eq!(
        s.query(sym("Top"), "select E.Doubled from E in Elite")
            .unwrap(),
        Value::set([Value::Int(132)])
    );
    // Non-DDL statements are refused by the typed API.
    assert!(s
        .catalog()
        .define_class("Staff", "insert Person value [Name: \"X\"];")
        .is_err());
}

#[test]
fn unrelated_views_keep_their_caches_across_schema_changes() {
    let mut s = staff_session();
    s.execute(
        r#"
        database Extra;
        class Thing type [Label: string];
        "#,
    )
    .unwrap();
    s.execute(
        "create view VStaff; import all classes from database Staff; \
         class Adult includes (select P from Person where P.Age >= 21);",
    )
    .unwrap();
    // Warm VStaff's population cache.
    assert_eq!(
        s.query(sym("VStaff"), "count(Adult)").unwrap(),
        Value::Int(2)
    );
    let stats = s.view(sym("VStaff")).unwrap().stats();
    assert_eq!(stats.recomputations, 1);
    // A schema change on the *unrelated* database must not rebind VStaff:
    // its bound state (and warm cache) survives. Before the dependency
    // graph, every schema change rebound every view, zeroing this.
    s.focus(sym("Extra")).unwrap();
    s.execute("attribute Tag in class Thing has value self.Label;")
        .unwrap();
    let stats = s.view(sym("VStaff")).unwrap().stats();
    assert_eq!(stats.recomputations, 1, "VStaff was rebound unnecessarily");
    assert_eq!(
        s.query(sym("VStaff"), "count(Adult)").unwrap(),
        Value::Int(2)
    );
    let stats = s.view(sym("VStaff")).unwrap().stats();
    assert_eq!(stats.recomputations, 1);
    assert!(stats.cache_hits >= 1, "expected a warm cache hit");
    // A schema change on Staff *does* revalidate VStaff.
    s.focus(sym("Staff")).unwrap();
    s.execute("attribute Tripled in class Person has value self.Age * 3;")
        .unwrap();
    assert_eq!(
        s.query(
            sym("VStaff"),
            "select A.Tripled from A in Adult where A.Age > 60"
        )
        .unwrap(),
        Value::set([Value::Int(198)])
    );
}

#[test]
fn save_restores_stacked_views_in_dependency_order() {
    let s = stacked_session();
    let script = s.save();
    let mut restored = Session::new();
    restored
        .execute(&script)
        .unwrap_or_else(|e| panic!("restore failed: {e}\n{script}"));
    assert_eq!(
        restored.query(sym("Top"), "count(Elite)").unwrap(),
        Value::Int(1)
    );
    // Fixpoint: saving the restored session reproduces the same script.
    assert_eq!(restored.save(), script);
}

#[test]
fn catalog_defines_databases_classes_and_views() {
    let mut s = Session::new();
    assert_eq!(
        s.catalog().create_database("Navy").unwrap(),
        DdlOutcome::Defined(sym("Navy"))
    );
    // Idempotent.
    assert_eq!(
        s.catalog().create_database("Navy").unwrap(),
        DdlOutcome::Defined(sym("Navy"))
    );
    assert_eq!(
        s.catalog()
            .define_class("Navy", "class Ship type [Name: string];")
            .unwrap(),
        DdlOutcome::Revalidated {
            changed: sym("Navy"),
            dependents: 0,
        }
    );
    let def =
        ViewDef::from_script("create view Fleet; import all classes from database Navy;").unwrap();
    assert_eq!(
        s.catalog().define_view(def.clone()).unwrap(),
        DdlOutcome::Defined(sym("Fleet"))
    );
    // Duplicate definition is an error; so is redefining the unknown.
    assert!(s.catalog().define_view(def).is_err());
    let other = ViewDef::from_script("create view Ghost;").unwrap();
    assert!(s.catalog().redefine_view(other).is_err());
    // Read accessors.
    assert_eq!(
        s.catalog().dependents(DepTarget::Database(sym("Navy"))),
        vec![sym("Fleet")]
    );
    assert!(s.catalog().dependencies("Fleet").is_some());
    assert!(s.catalog().dependencies("Ghost").is_none());
}

#[test]
fn base_write_delta_propagates_through_the_stack() {
    let mut s = Session::with_options(
        ViewOptions::builder()
            .population(Population::Incremental)
            .build(),
    );
    s.execute(
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, Income: integer];
        object #1 in Person value [Name: "Maggy", Age: 66, Income: 120];
        object #2 in Person value [Name: "Bart", Age: 10, Income: 0];
        object #3 in Person value [Name: "Tony", Age: 30, Income: 80];
        "#,
    )
    .unwrap();
    s.execute(
        r#"
        create view Adults;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        create view Earners;
        import all classes from view Adults;
        class Rich includes (select A from Adult where A.Income >= 100);
        create view Top;
        import all classes from view Earners;
        class Elite includes (select R from Rich where R.Age >= 60);
        "#,
    )
    .unwrap();
    // Warm every level.
    assert_eq!(s.query(sym("Top"), "count(Elite)").unwrap(), Value::Int(1));
    let warm = s.view(sym("Top")).unwrap().stats();
    assert_eq!(
        warm.recomputations, 3,
        "cold population of Elite/Rich/Adult"
    );
    // One base write: Tony gets a raise into Rich (but stays under 60).
    // Under incremental materialization the session *eagerly* pushes the
    // write through the dependency graph, delta-retesting the changed oid
    // at every level — no full recomputation anywhere in the stack.
    s.focus(sym("Staff")).unwrap();
    s.execute("name tony = #3; set tony.Income = 150;").unwrap();
    let stats = s.view(sym("Top")).unwrap().stats();
    assert!(
        stats.incremental_updates >= warm.incremental_updates + 3,
        "expected delta updates at all three levels, got: {stats:?}"
    );
    assert_eq!(stats.recomputations, 3, "no FullRecompute: {stats:?}");
    // The read then lands on populations the propagation left warm.
    let e = s.explain(sym("Top"), "count(Rich)").unwrap();
    assert!(e.contains("population Rich: CacheHit"), "got: {e}");
    assert!(!e.contains("FullRecompute"), "got: {e}");
    assert_eq!(s.query(sym("Top"), "count(Rich)").unwrap(), Value::Int(2));
}
