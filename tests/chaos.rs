//! Seeded chaos suite: every failpoint site armed probabilistically while
//! a write/read workload hammers one view, then the robustness invariants
//! are checked:
//!
//! 1. **no escaped panics** — injected panics are contained to typed
//!    [`QueryError::Panicked`] errors or retried away;
//! 2. **typed errors only** — every failure surfaces as an error value
//!    with a non-empty rendering and an intact `source()` chain root;
//! 3. **monotonic journal floor** — the store version never moves
//!    backwards, even across failed mutations;
//! 4. **identity stability** — imaginary oids are a function of their core
//!    tuple: two clean reads of an imaginary extent agree exactly, and the
//!    identity table never shrinks;
//! 5. **full recovery** — once faults clear there are no poisoned locks,
//!    and the next recompute agrees exactly with a direct base scan (a
//!    stale or generation-mixed population cannot linger).
//!
//! Seeds: two fixed defaults plus whatever `CHAOS_SEED` is set to, so CI
//! can roll a random one. On failure, if `OV_CHAOS_TRACE` names a file,
//! the flight-recorder span trace is dumped there for the artifact upload.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use objects_and_views::oodb::faults::{self, FaultAction, FaultSchedule};
use objects_and_views::oodb::Tuple;
use objects_and_views::prelude::*;
use objects_and_views::query::{budget, Budget};

/// The fault registry is process-global: chaos tests must not interleave
/// with each other (cargo runs tests on threads). Poisoning is ignored —
/// a failed test must not wedge the rest of the suite.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();
    guard
}

/// Dumps the span trace to `$OV_CHAOS_TRACE` when the test fails, and
/// always disarms the registry so a failure can't poison later tests.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        faults::clear();
        objects_and_views::oodb::trace::set_enabled(false);
        if std::thread::panicking() {
            if let Ok(path) = std::env::var("OV_CHAOS_TRACE") {
                let dump = objects_and_views::oodb::recorder().dump_chrome_trace();
                match std::fs::write(&path, dump) {
                    Ok(()) => eprintln!("chaos: span trace written to {path}"),
                    Err(e) => eprintln!("chaos: could not write trace to {path}: {e}"),
                }
            }
        }
    }
}

const N_PEOPLE: i64 = 300;
const ROUNDS: usize = 200;

fn staff_system() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, City: string];
        "#,
    )
    .unwrap();
    let handle = sys.database(sym("Staff")).unwrap();
    let mut db = handle.write();
    let person = db.schema.require_class(sym("Person")).unwrap();
    for i in 0..N_PEOPLE {
        db.create_object(
            person,
            Value::tuple([
                (sym("Name"), Value::str(&format!("p{i}"))),
                (sym("Age"), Value::Int(i % 90)),
                (
                    sym("City"),
                    Value::str(if i % 3 == 0 { "London" } else { "Paris" }),
                ),
            ]),
        )
        .unwrap();
    }
    drop(db);
    sys
}

fn chaos_view(sys: &System) -> View {
    // `Adult` exercises scan populations, `CityTag` imaginary identity.
    ViewDef::from_script(
        r#"
        create view Chaos;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class CityTag includes imaginary (select [City: P.City] from P in Person);
        "#,
    )
    .unwrap()
    .binder(sys)
    .options(
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .parallel(ParallelConfig {
                threads: 4,
                threshold: 32,
            })
            .build(),
    )
    .bind()
    .unwrap()
}

/// One full seeded run. Panics (via `assert!`) on any invariant breach so
/// the failing seed appears in the test output.
fn run_chaos(seed: u64) {
    let _serial = chaos_lock();
    let _guard = ChaosGuard;
    let sys = staff_system();
    let view = chaos_view(&sys);
    let db = sys.database(sym("Staff")).unwrap();
    let person = {
        let d = db.read();
        d.schema.require_class(sym("Person")).unwrap()
    };
    let victims: Vec<Oid> = {
        let d = db.read();
        d.deep_extent(person).into_iter().take(16).collect()
    };
    // Warm both populations so degradation has a last-good generation.
    view.extent_of(sym("Adult")).unwrap();
    view.extent_of(sym("CityTag")).unwrap();

    faults::set_seed(seed);
    for site in [
        "store.insert",
        "store.update",
        "store.set_field",
        "store.remove",
        "store.index_lookup",
        "store.changes_since",
        "query.scan_chunk",
        "view.scan_chunk",
        "view.population_recompute",
    ] {
        faults::arm(site, FaultSchedule::Probability(0.08), FaultAction::Error);
    }
    faults::arm(
        "view.scan_chunk",
        FaultSchedule::Probability(0.04),
        FaultAction::Panic,
    );

    // Injected panics are contained below; keep the default hook from
    // spamming a backtrace per injection.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let tight = Arc::new(Budget::new().with_max_steps(50));
    let mut journal_floor = 0u64;
    let mut identity_floor = 0usize;
    let mut created: Vec<Oid> = Vec::new();
    let mut escaped = None;
    for i in 0..ROUNDS {
        // Invariant 3: the journal floor is monotonic across every
        // mutation, including the ones a failpoint aborts.
        let v = db.read().store.version();
        assert!(
            v >= journal_floor,
            "seed {seed} round {i}: journal version moved backwards ({journal_floor} -> {v})"
        );
        journal_floor = v;

        let write = catch_unwind(AssertUnwindSafe(|| match i % 5 {
            3 => db
                .write()
                .create_object(
                    person,
                    Value::tuple([
                        (sym("Name"), Value::str(&format!("c{i}"))),
                        (sym("Age"), Value::Int((i % 90) as i64)),
                        (sym("City"), Value::str("Roma")),
                    ]),
                )
                .map(|o| created.push(o)),
            4 if !created.is_empty() => {
                let o = created.swap_remove(i % created.len());
                db.write().delete_object(o).map(|_| ())
            }
            _ => {
                let o = victims[i % victims.len()];
                db.write()
                    .set_attr(o, sym("Age"), Value::Int((i % 90) as i64))
            }
        }));
        match write {
            // Invariant 2: a failed write is a typed error that renders.
            Ok(Err(e)) => assert!(!e.to_string().is_empty()),
            Ok(Ok(())) => {}
            Err(_) => {
                escaped = Some(format!(
                    "seed {seed} round {i}: panic escaped a store write"
                ));
                break;
            }
        }

        // Reads rotate across plain scans, imaginary populations, and a
        // deliberately tight budget (breaches must stay typed too).
        let read = catch_unwind(AssertUnwindSafe(|| match i % 4 {
            1 => view.extent_of(sym("CityTag")).map(|e| e.len()),
            2 => budget::with(tight.clone(), || {
                view.query("count((select A from A in Adult where A.Age >= 65))")
                    .map(|_| 0usize)
            }),
            _ => view.extent_of(sym("Adult")).map(|e| e.len()),
        }));
        match read {
            Ok(Ok(_)) => {
                // Invariant 4 (first half): the identity table for the
                // imaginary class never shrinks.
                let len = view.identity_table_len(sym("CityTag"));
                assert!(
                    len >= identity_floor,
                    "seed {seed} round {i}: identity table shrank ({identity_floor} -> {len})"
                );
                identity_floor = len;
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                assert!(
                    !msg.is_empty(),
                    "seed {seed} round {i}: error with an empty rendering"
                );
            }
            Err(_) => {
                escaped = Some(format!("seed {seed} round {i}: panic escaped a view read"));
                break;
            }
        }
    }
    std::panic::set_hook(hook);
    faults::clear();
    if let Some(msg) = escaped {
        panic!("{msg}");
    }

    // Invariant 5: full recovery. One more write must land, and the next
    // recompute must agree exactly with a direct base scan.
    db.write()
        .set_attr(victims[0], sym("Age"), Value::Int(30))
        .expect("post-chaos write failed: a fault leaked past clear()");
    let adults: BTreeSet<Oid> = view
        .extent_of(sym("Adult"))
        .expect("post-chaos read failed: poisoned state")
        .into_iter()
        .collect();
    let expected: BTreeSet<Oid> = {
        let d = db.read();
        d.deep_extent(person)
            .into_iter()
            .filter(|&o| matches!(d.stored_attr(o, sym("Age")), Ok(Value::Int(a)) if *a >= 21))
            .collect()
    };
    assert_eq!(
        adults, expected,
        "seed {seed}: post-chaos population diverged from a direct base scan"
    );

    // Invariant 4 (second half): imaginary identity is stable — two clean
    // reads agree oid-for-oid.
    let a: BTreeSet<Oid> = view
        .extent_of(sym("CityTag"))
        .unwrap()
        .into_iter()
        .collect();
    let b: BTreeSet<Oid> = view
        .extent_of(sym("CityTag"))
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(
        a, b,
        "seed {seed}: imaginary identity unstable across clean reads"
    );
}

/// A fault injected mid-revalidation must never leave the catalog half
/// updated: a redefinition stages every dependent rebind before committing
/// any of them, so the session either moves wholesale or not at all.
#[test]
fn chaos_fault_mid_revalidation_keeps_catalog_atomic() {
    let _serial = chaos_lock();
    let _guard = ChaosGuard;
    let mut s = Session::new();
    s.execute(
        r#"
        database Staff;
        class Person type [Name: string, Age: integer];
        object #1 in Person value [Name: "Maggy", Age: 66];
        create view Adults;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        create view Top;
        import all classes from view Adults;
        class Elder includes (select A from Adult where A.Age >= 60);
        "#,
    )
    .unwrap();
    let before = s.save();
    // Redefining Adults binds Adults first, then its dependent Top; fail
    // the second bind — the dependent, mid-revalidation.
    faults::arm("view.bind", FaultSchedule::Nth(2), FaultAction::Error);
    let candidate = ViewDef::from_script(
        "create view Adults; import all classes from database Staff; \
         class Adult includes (select P from Person where P.Age >= 18);",
    )
    .unwrap();
    let err = s.catalog().redefine_view(candidate).unwrap_err();
    assert!(
        matches!(err, ViewError::RevalidationFailed { .. }),
        "got: {err}"
    );
    assert!(err.is_transient(), "injected fault should stay transient");
    faults::clear();
    // Nothing half-moved: definitions, dependency graph, and answers all
    // match the pre-fault session.
    assert_eq!(s.save(), before, "catalog changed despite the rollback");
    assert_eq!(s.query(sym("Top"), "count(Elder)").unwrap(), Value::Int(1));
    assert_eq!(
        s.dependency_graph()
            .transitive_dependents(DepTarget::View(sym("Adults"))),
        vec![sym("Top")]
    );
}

// ---------------------------------------------------------------------------
// Crash-recovery chaos: a durable session's workload interleaved with
// injected WAL failures and simulated kills (drop without checkpoint, torn
// tails, failed checkpoints). After every "crash" the session reopens and
// must recover the exact committed prefix:
//
// 6. **exact-prefix recovery** — recovered state equals the pre-crash
//    in-memory state (WAL-before-apply: a failed append never applied, an
//    applied mutation was always logged first);
// 7. **identity durability** — the imaginary identity table survives the
//    crash bit-for-bit, so imaginary oids stay valid names;
// 8. **floor re-seating** — the journal floor recovers to the pre-crash
//    version (never 0), so stale readers get FullRecompute, not an empty
//    delta.
// ---------------------------------------------------------------------------

/// xorshift64* — a deterministic op stream per seed, no external crates.
struct CrashRng(u64);

impl CrashRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn crash_scratch(seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ov-crash-chaos-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The durable identity table for view `V` as a comparable map:
/// `(class name, core tuple) → oid` is exactly what must survive a crash.
fn crash_identity(s: &Session) -> BTreeMap<(String, String), Oid> {
    let db = s.system().database(sym("Staff")).unwrap();
    let db = db.read();
    let core = db.durable_core().expect("durable database");
    core.identity_for_view(sym("V"))
        .into_iter()
        .map(|(class, tuple, oid): (Symbol, Tuple, Oid)| {
            ((class.to_string(), format!("{tuple:?}")), oid)
        })
        .collect()
}

/// Simulates a kill: captures the in-memory (= committed) state, drops the
/// session, reopens from disk, and asserts exact-prefix recovery.
fn crash_and_reopen(s: Session, dir: &std::path::Path, seed: u64, label: &str) -> Session {
    let expected = s.save();
    let identity = crash_identity(&s);
    let version = {
        let db = s.system().database(sym("Staff")).unwrap();
        let v = db.read().store.version();
        v
    };
    drop(s);
    let s = Session::open(dir, Durability::Wal)
        .unwrap_or_else(|e| panic!("seed {seed} [{label}]: reopen failed: {e}"));
    // Invariant 6: exact committed prefix.
    assert_eq!(
        s.save(),
        expected,
        "seed {seed} [{label}]: recovered state diverged from the committed prefix"
    );
    // Invariant 7: identity table bit-for-bit.
    assert_eq!(
        crash_identity(&s),
        identity,
        "seed {seed} [{label}]: imaginary identity changed across the crash"
    );
    // Invariant 8: version preserved, floor re-seated above stale readers.
    let db = s.system().database(sym("Staff")).unwrap();
    {
        let d = db.read();
        assert_eq!(
            d.store.version(),
            version,
            "seed {seed} [{label}]: store version moved across recovery"
        );
        if version > 0 {
            assert_eq!(
                d.store.changes_since(0),
                None,
                "seed {seed} [{label}]: journal floor reset to 0 — stale readers \
                 would see an empty delta instead of FullRecompute"
            );
        }
    }
    drop(db);
    s
}

const CRASH_CYCLES: usize = 4;
const CRASH_ROUNDS: usize = 25;

/// One full seeded crash-recovery run.
fn run_crash_chaos(seed: u64) {
    let _serial = chaos_lock();
    let _guard = ChaosGuard;
    let dir = crash_scratch(seed);
    let mut s = Session::open(&dir, Durability::Wal).unwrap();
    s.execute(
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, City: string];
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        class CityTag includes imaginary (select [City: P.City] from P in Person);
        "#,
    )
    .unwrap();
    let cities = ["London", "Paris", "Roma", "Oslo", "Quito"];
    let mut rng = CrashRng(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut next_name = 0usize;
    // Seed a base population (durably — these ride the WAL too).
    {
        let db = s.system().database(sym("Staff")).unwrap();
        let mut d = db.write();
        let person = d.schema.require_class(sym("Person")).unwrap();
        for i in 0..24 {
            next_name += 1;
            d.create_object(
                person,
                Value::tuple([
                    (sym("Name"), Value::str(&format!("p{next_name}"))),
                    (sym("Age"), Value::Int(i % 90)),
                    (sym("City"), Value::str(cities[(i % 3) as usize])),
                ]),
            )
            .unwrap();
        }
    }

    for cycle in 0..CRASH_CYCLES {
        // Populate the imaginary extent with faults clear: identity
        // assignments log strictly here, so the mirror and WAL agree.
        s.view(sym("V"))
            .unwrap()
            .extent_of(sym("CityTag"))
            .unwrap_or_else(|e| panic!("seed {seed} cycle {cycle}: clean read failed: {e}"));

        // Mutation storm under WAL append failures. A failed append must
        // leave memory untouched (that is what makes invariant 6 hold).
        faults::set_seed(seed.wrapping_add(cycle as u64));
        faults::arm(
            "wal.append",
            FaultSchedule::Probability(0.10),
            FaultAction::Error,
        );
        {
            let db = s.system().database(sym("Staff")).unwrap();
            let person = {
                let d = db.read();
                d.schema.require_class(sym("Person")).unwrap()
            };
            for _ in 0..CRASH_ROUNDS {
                let r = rng.next();
                let outcome = match r % 4 {
                    0 => {
                        next_name += 1;
                        db.write()
                            .create_object(
                                person,
                                Value::tuple([
                                    (sym("Name"), Value::str(&format!("p{next_name}"))),
                                    (sym("Age"), Value::Int((r % 90) as i64)),
                                    (
                                        sym("City"),
                                        Value::str(cities[(r % cities.len() as u64) as usize]),
                                    ),
                                ]),
                            )
                            .map(|_| ())
                    }
                    1 => {
                        let oids = db.read().store.sorted_oids();
                        // Keep a core population so extents stay non-trivial.
                        if oids.len() > 8 {
                            let victim = oids[(r % oids.len() as u64) as usize];
                            db.write().delete_object(victim).map(|_| ())
                        } else {
                            Ok(())
                        }
                    }
                    _ => {
                        let oids = db.read().store.sorted_oids();
                        let victim = oids[(r % oids.len() as u64) as usize];
                        db.write()
                            .set_attr(victim, sym("Age"), Value::Int((r % 90) as i64))
                    }
                };
                // Invariant 2 carries over: failures stay typed errors.
                if let Err(e) = outcome {
                    assert!(!e.to_string().is_empty());
                }
            }
        }
        faults::clear();

        // Every other cycle the "crash" is a torn WAL write: a partial
        // frame at the tail, exactly what a power cut mid-write leaves.
        if cycle % 2 == 0 {
            faults::arm("wal.torn_write", FaultSchedule::Nth(1), FaultAction::Error);
            let db = s.system().database(sym("Staff")).unwrap();
            let person = {
                let d = db.read();
                d.schema.require_class(sym("Person")).unwrap()
            };
            let torn = db.write().create_object(
                person,
                Value::tuple([
                    (sym("Name"), Value::str("torn")),
                    (sym("Age"), Value::Int(1)),
                    (sym("City"), Value::str("Atlantis")),
                ]),
            );
            assert!(
                torn.is_err(),
                "seed {seed} cycle {cycle}: torn write reported success"
            );
            faults::clear();
        }

        s = crash_and_reopen(s, &dir, seed, &format!("cycle {cycle}"));

        // Checkpoints under failpoints: a failed checkpoint must leave the
        // previous snapshot + WAL fully recoverable.
        match cycle {
            1 => {
                faults::arm(
                    "checkpoint.write",
                    FaultSchedule::Nth(1),
                    FaultAction::Error,
                );
                assert!(
                    s.checkpoint().is_err(),
                    "seed {seed}: checkpoint survived an injected write failure"
                );
                faults::clear();
                s = crash_and_reopen(s, &dir, seed, "after failed checkpoint.write");
            }
            2 => {
                faults::arm(
                    "checkpoint.rename",
                    FaultSchedule::Nth(1),
                    FaultAction::Error,
                );
                assert!(
                    s.checkpoint().is_err(),
                    "seed {seed}: checkpoint survived an injected rename failure"
                );
                faults::clear();
                // A clean checkpoint heals, and recovery now starts from
                // the fresh snapshot plus an (empty) WAL tail.
                s.checkpoint()
                    .unwrap_or_else(|e| panic!("seed {seed}: clean checkpoint failed: {e}"));
                s = crash_and_reopen(s, &dir, seed, "after healed checkpoint");
            }
            _ => {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_chaos_fixed_seed_a() {
    run_crash_chaos(0x0b1ec75);
}

#[test]
fn crash_chaos_fixed_seed_b() {
    run_crash_chaos(1991);
}

/// CI rolls a random seed into `CHAOS_SEED`; locally this repeats seed A.
#[test]
fn crash_chaos_env_seed() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0b1ec75);
    println!("crash_chaos_env_seed: CHAOS_SEED={seed}");
    run_crash_chaos(seed);
}

#[test]
fn chaos_fixed_seed_a() {
    run_chaos(0x0b1ec75);
}

#[test]
fn chaos_fixed_seed_b() {
    run_chaos(1991);
}

/// CI rolls a random seed into `CHAOS_SEED`; locally this repeats seed A.
/// The seed is printed so a failure is reproducible.
#[test]
fn chaos_env_seed() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0b1ec75);
    println!("chaos_env_seed: CHAOS_SEED={seed}");
    run_chaos(seed);
}
