//! End-to-end flight-recorder test: one session workload must leave spans
//! from all three instrumented crates (store, query, views) in the
//! recorder, and the Chrome-trace export of that recording must be
//! well-formed.
//!
//! The enabled flag is process-global, so this lives in its own
//! integration-test binary — no other test in this binary toggles tracing.

use objects_and_views::oodb::{recorder, trace};
use objects_and_views::views::{Outcome, Session};

#[test]
fn workload_emits_spans_from_all_three_crates() {
    recorder().clear();
    trace::set_enabled(true);
    let mut session = Session::new();
    let outcomes = session
        .execute(
            r#"
            database D;
            class Person type [Name: string, Age: integer];
            insert Person value [Name: "ada", Age: 36];
            insert Person value [Name: "kid", Age: 9];
            create view V;
            import all classes from database D;
            class Adult includes (select P from Person where P.Age >= 21);
            select A.Name from A in Adult;
            "#,
        )
        .expect("workload runs");
    assert!(matches!(outcomes.last(), Some(Outcome::Value(_))));
    trace::set_enabled(false);

    let spans = recorder().snapshot();
    let names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    // One representative span per crate layer.
    for expected in [
        "store.insert",         // ov-oodb store mutation
        "query.execute",        // ov-query pipeline stage
        "view.population",      // ov-views population
        "session.execute_stmt", // ov-views session binding
    ] {
        assert!(
            names.contains(expected),
            "missing span {expected:?}; got {names:?}"
        );
    }

    // The Chrome export is one JSON object Perfetto can load: it has the
    // trace-events envelope, thread-name metadata, and complete events.
    let chrome = recorder().dump_chrome_trace();
    assert!(chrome.starts_with('{') && chrome.trim_end().ends_with('}'));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\": \"M\""));
    assert!(chrome.contains("\"ph\": \"X\""));
    assert!(chrome.contains("store.insert"));

    // JSONL: one object per line, keys sorted (dur_ns first).
    let jsonl = recorder().dump_jsonl();
    let mut lines = 0usize;
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"dur_ns\":"), "unsorted keys: {line}");
        assert!(line.ends_with('}'));
        lines += 1;
    }
    assert_eq!(lines, spans.len());
}
