//! The concurrent read path, end to end: `View` is `Send + Sync`, N reader
//! threads sharing one view agree with a sequential baseline, the sharded
//! population cache counts hits under contention, and the parallel query
//! executor returns byte-identical results to the sequential one.

use objects_and_views::prelude::*;

const N_PEOPLE: i64 = 400;
const N_READERS: usize = 8;

fn staff_system() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Staff;
        class Person type [Name: string, Age: integer, Income: integer];
        "#,
    )
    .unwrap();
    let handle = sys.database(sym("Staff")).unwrap();
    let mut db = handle.write();
    let person = db.schema.require_class(sym("Person")).unwrap();
    for i in 0..N_PEOPLE {
        db.create_object(
            person,
            Value::tuple([
                (sym("Name"), Value::str(&format!("p{i}"))),
                (sym("Age"), Value::Int(i % 90)),
                (sym("Income"), Value::Int((i * 997) % 150_000)),
            ]),
        )
        .unwrap();
    }
    drop(db);
    sys
}

fn adult_view(sys: &System, options: ViewOptions) -> View {
    ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 18);
        class Rich includes (select P from Person where P.Income >= 100000);
        attribute Label in class Adult has value "adult";
        "#,
    )
    .unwrap()
    .binder(sys)
    .options(options)
    .bind()
    .unwrap()
}

/// The tentpole guarantee, checked at compile time: a view can be shared
/// across threads by reference.
#[test]
fn view_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<View>();
    assert_send_sync::<ViewStats>();
    assert_send_sync::<ViewOptions>();
}

/// N reader threads hammer one shared view — extents, queries, attribute
/// resolution — and every thread must observe exactly the sequential
/// baseline's answers.
#[test]
fn concurrent_readers_agree_with_sequential_baseline() {
    let sys = staff_system();
    let view = adult_view(&sys, ViewOptions::default());

    // Sequential baseline, computed before any concurrency.
    let base_adults = view.extent_of(sym("Adult")).unwrap();
    let base_rich = view.extent_of(sym("Rich")).unwrap();
    let base_q = view
        .query("select P.Name from P in Adult where P.Income >= 100000")
        .unwrap();
    let expected_adults = (0..N_PEOPLE).filter(|i| i % 90 >= 18).count();
    assert_eq!(base_adults.len(), expected_adults);

    std::thread::scope(|s| {
        for _ in 0..N_READERS {
            s.spawn(|| {
                for _ in 0..10 {
                    assert_eq!(view.extent_of(sym("Adult")).unwrap(), base_adults);
                    assert_eq!(view.extent_of(sym("Rich")).unwrap(), base_rich);
                    assert_eq!(
                        view.query("select P.Name from P in Adult where P.Income >= 100000")
                            .unwrap(),
                        base_q
                    );
                }
            });
        }
    });
}

/// Cold-start contention: many threads request the same population at
/// once. Whoever wins the race computes; everyone gets the same answer,
/// and the stats account for every request as either a hit or a miss.
#[test]
fn cold_start_race_converges_and_stats_account() {
    let sys = staff_system();
    let view = adult_view(&sys, ViewOptions::default());
    let results: Vec<Vec<Oid>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N_READERS)
            .map(|_| s.spawn(|| view.extent_of(sym("Adult")).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    let st = view.stats();
    // Every thread's first read either hit the cache or recomputed; later
    // reads of the warm cache are hits. Nothing is double-counted.
    assert!(st.recomputations >= 1, "someone must have computed");
    assert!(
        st.cache_hits + st.cache_misses >= N_READERS as u64,
        "each reader accounted: hits={} misses={}",
        st.cache_hits,
        st.cache_misses
    );
}

/// Warm-cache reads are all hits, globally and per thread.
#[test]
fn warm_cache_hits_count_per_thread() {
    let sys = staff_system();
    let view = adult_view(&sys, ViewOptions::default());
    view.extent_of(sym("Adult")).unwrap(); // warm
    let before = view.stats();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..5 {
                    view.extent_of(sym("Adult")).unwrap();
                }
                // This thread's own contribution is visible to it.
                let mine = view.thread_stats();
                assert!(mine.cache_hits >= 5, "thread saw {} hits", mine.cache_hits);
            });
        }
    });
    let after = view.stats();
    assert_eq!(after.cache_hits - before.cache_hits, 20);
    assert_eq!(after.recomputations, before.recomputations);
}

/// The parallel population scan and the parallel query executor return the
/// same answers as their sequential counterparts.
#[test]
fn parallel_scan_matches_sequential() {
    let sys = staff_system();
    let seq = adult_view(&sys, ViewOptions::default());
    let par = adult_view(
        &sys,
        ViewOptions::builder()
            .population(Population::AlwaysRecompute)
            .parallel(ParallelConfig {
                threads: 4,
                threshold: 16,
            })
            .build(),
    );
    assert_eq!(
        seq.extent_of(sym("Adult")).unwrap(),
        par.extent_of(sym("Adult")).unwrap()
    );
    assert_eq!(
        seq.extent_of(sym("Rich")).unwrap(),
        par.extent_of(sym("Rich")).unwrap()
    );
    assert!(
        par.stats().parallel_scans > 0,
        "the split path should have run"
    );

    // Parallel query executor over the view as a data source.
    let cfg = ParallelConfig {
        threads: 4,
        threshold: 1,
    };
    let q = "select P.Name from P in Adult where P.Age >= 65";
    assert_eq!(
        seq.query(q).unwrap(),
        run_query_parallel(&par, &cfg, q).unwrap()
    );
}

/// Virtual attributes resolve correctly from worker threads: resolution
/// walks populations (privileged visibility, cycle guards) whose state is
/// now thread-local.
#[test]
fn attribute_resolution_across_threads() {
    let sys = staff_system();
    let view = adult_view(&sys, ViewOptions::default());
    let adults = view.extent_of(sym("Adult")).unwrap();
    let sample: Vec<Oid> = adults.into_iter().take(32).collect();
    std::thread::scope(|s| {
        for _ in 0..N_READERS {
            s.spawn(|| {
                for &o in &sample {
                    let v =
                        objects_and_views::query::eval_attr(&view, o, sym("Label"), &[]).unwrap();
                    assert_eq!(v, Value::str("adult"));
                }
            });
        }
    });
}

/// An incremental view whose cached version falls behind a trimmed journal
/// must fall back to full recomputation — and still agree, under concurrent
/// writers, with a freshly-bound view's population.
#[test]
fn journal_gap_under_concurrent_writers_forces_recompute() {
    let sys = staff_system();
    let handle = sys.database(sym("Staff")).unwrap();
    // A tiny journal: a handful of writes outrun the retained window.
    const JOURNAL_CAP: usize = 8;
    handle.write().store.set_journal_cap(JOURNAL_CAP);

    let view = adult_view(
        &sys,
        ViewOptions::builder()
            .materialization(Materialization::Incremental)
            .build(),
    );
    // Warm the cache at the current version.
    let warm = view.extent_of(sym("Adult")).unwrap();
    assert!(!warm.is_empty());
    let stats_before = view.stats();

    // Concurrent writers push far more than JOURNAL_CAP mutations, so the
    // cached version predates the journal floor by the time readers look.
    let person = {
        let db = handle.read();
        db.schema.require_class(sym("Person")).unwrap()
    };
    const WRITERS: usize = 4;
    const WRITES_EACH: usize = 16;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..WRITES_EACH {
                    let mut db = handle.write();
                    db.create_object(
                        person,
                        Value::tuple([
                            (sym("Name"), Value::str(&format!("w{w}-{i}"))),
                            (sym("Age"), Value::Int(30)),
                            (sym("Income"), Value::Int(0)),
                        ]),
                    )
                    .unwrap();
                }
            });
        }
    });

    // The gap is real: the store cannot serve a delta from the cached
    // version any more.
    let cached_version_gone = {
        let db = handle.read();
        db.store.changes_since(0).is_none()
    };
    assert!(cached_version_gone, "journal should have trimmed past v0");

    let after = view.extent_of(sym("Adult")).unwrap();
    let stats_after = view.stats();
    assert!(
        stats_after.recomputations > stats_before.recomputations,
        "journal gap must force the full-recompute path, got {stats_after:?}"
    );
    assert_eq!(
        stats_after.incremental_updates, stats_before.incremental_updates,
        "no delta can be served across a journal gap"
    );
    // And the fallback is correct: identical to a view bound fresh now.
    let fresh = adult_view(&sys, ViewOptions::default());
    assert_eq!(after, fresh.extent_of(sym("Adult")).unwrap());
    assert_eq!(after.len(), warm.len() + WRITERS * WRITES_EACH);

    // The plan layer reports the same story.
    let trace = view.explain_population(sym("Adult")).unwrap();
    assert!(
        matches!(trace.path, objects_and_views::query::PopPath::CacheHit),
        "population is cached again after the recompute: {trace}"
    );
}
