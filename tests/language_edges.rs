//! Edge-of-the-language tests: corners that real schemas hit but the paper
//! examples don't exercise.

use objects_and_views::oodb::{sym, System, Value};
use objects_and_views::query::{execute_script, run_query};
use objects_and_views::views::ViewDef;

fn sys_with(script: &str) -> System {
    let mut sys = System::new();
    execute_script(&mut sys, script).unwrap();
    sys
}

#[test]
fn lists_are_ordered_and_concatenate() {
    let sys = sys_with(
        r#"
        database D;
        class Playlist type [Tracks: list(string)];
        object #1 in Playlist value [Tracks: list("a", "b", "a")];
        name p = #1;
        "#,
    );
    let db = sys.database(sym("D")).unwrap();
    let db = db.read();
    // Lists keep duplicates and order.
    assert_eq!(
        run_query(&*db, "p.Tracks").unwrap(),
        Value::list([Value::str("a"), Value::str("b"), Value::str("a")])
    );
    assert_eq!(
        run_query(&*db, r#"p.Tracks ++ list("c")"#).unwrap(),
        Value::list([
            Value::str("a"),
            Value::str("b"),
            Value::str("a"),
            Value::str("c")
        ])
    );
    // Selecting from a list yields a set (O₂ select semantics).
    assert_eq!(
        run_query(&*db, "select T from T in p.Tracks").unwrap(),
        Value::set([Value::str("a"), Value::str("b")])
    );
    assert_eq!(run_query(&*db, "count(p.Tracks)").unwrap(), Value::Int(3));
}

#[test]
fn multi_parameter_classes() {
    let sys = sys_with(
        r#"
        database D;
        class Person type [Name: string, Age: integer, City: string];
        object #1 in Person value [Name: "A", Age: 30, City: "London"];
        object #2 in Person value [Name: "B", Age: 30, City: "Paris"];
        object #3 in Person value [Name: "C", Age: 40, City: "London"];
        "#,
    );
    let view = ViewDef::from_script(
        "create view V; import all classes from database D; \
         class Cohort(A, C) includes \
            (select P from Person where P.Age = A and P.City = C);",
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(
        view.query(r#"count(Cohort(30, "London"))"#).unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        view.query(r#"count(Cohort(30, "Paris"))"#).unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        view.query(r#"count(Cohort(40, "Paris"))"#).unwrap(),
        Value::Int(0)
    );
}

#[test]
fn float_core_attributes_have_stable_identity() {
    // Identity tables key on tuples containing floats — the total order on
    // Value must keep them stable.
    let sys = sys_with(
        r#"
        database D;
        class Reading type [Temp: float];
        object #1 in Reading value [Temp: 21.5];
        object #2 in Reading value [Temp: 21.5];
        object #3 in Reading value [Temp: -0.0];
        "#,
    );
    let view = ViewDef::from_script(
        "create view V; import all classes from database D; \
         class TempGroup includes imaginary (select [T: R.Temp] from R in Reading);",
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    // 21.5 appears twice → one group; -0.0 → another.
    assert_eq!(view.query("count(TempGroup)").unwrap(), Value::Int(2));
    let a = view.extent_of(sym("TempGroup")).unwrap();
    let b = view.extent_of(sym("TempGroup")).unwrap();
    assert_eq!(a, b);
}

#[test]
fn select_distinct_and_the_through_views() {
    let sys = sys_with(
        r#"
        database D;
        class P type [N: integer];
        object #1 in P value [N: 1];
        object #2 in P value [N: 1];
        object #3 in P value [N: 2];
        "#,
    );
    let db = sys.database(sym("D")).unwrap();
    let db = db.read();
    // distinct is redundant over set results but must parse and run.
    assert_eq!(
        run_query(&*db, "count((select distinct X.N from X in P))").unwrap(),
        Value::Int(2)
    );
    // `select the` over a one-element filtered set.
    assert_eq!(
        run_query(&*db, "select the X.N from X in P where X.N = 2").unwrap(),
        Value::Int(2)
    );
}

#[test]
fn virtual_class_over_aliased_import() {
    let sys = sys_with(
        r#"
        database Ford;
        class Person type [Name: string, Age: integer];
        object #1 in Person value [Name: "Henry", Age: 88];
        "#,
    );
    let view = ViewDef::from_script(
        r#"
        create view V;
        import class Person from database Ford as Ford_Person;
        class Old_Fordite includes (select P from Ford_Person where P.Age >= 80);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.query("count(Old_Fordite)").unwrap(), Value::Int(1));
    assert_eq!(
        view.parents_of(sym("Old_Fordite")).unwrap(),
        vec![sym("Ford_Person")]
    );
}

#[test]
fn aliased_subtree_import_keeps_subclass_names() {
    let sys = sys_with(
        r#"
        database D;
        class Animal type [Name: string];
        class Dog inherits Animal type [Breed: string];
        object #1 in Dog value [Name: "Rex", Breed: "Lab"];
        "#,
    );
    let view = ViewDef::from_script("create view V; import class Animal from database D as Beast;")
        .unwrap()
        .binder(&sys)
        .bind()
        .unwrap();
    // The root is renamed; the subclass keeps its name and its position.
    assert!(view.is_subclass_by_name(sym("Dog"), sym("Beast")).unwrap());
    assert_eq!(view.query("count(Beast)").unwrap(), Value::Int(1));
    assert_eq!(
        view.query("select D.Breed from D in Dog").unwrap(),
        Value::set([Value::str("Lab")])
    );
}

#[test]
fn methods_resolve_through_virtual_class_membership() {
    // A parameterized method defined on a virtual class, called on an
    // object whose real class knows nothing about it.
    let sys = sys_with(
        r#"
        database D;
        class Account type [Balance: integer];
        object #1 in Account value [Balance: 100];
        name acct = #1;
        "#,
    );
    let view = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database D;
        class Positive includes (select A from Account where A.Balance > 0);
        attribute Projected(years: integer) in class Positive
            has value self.Balance + years * 10;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.query("acct.Projected(3)").unwrap(), Value::Int(130));
    // Wrong arity is caught.
    assert!(view.query("acct.Projected()").is_err());
}

#[test]
fn deeply_nested_selects_evaluate() {
    let sys = sys_with(
        r#"
        database D;
        class P type [N: integer];
        object #1 in P value [N: 1];
        object #2 in P value [N: 2];
        object #3 in P value [N: 3];
        "#,
    );
    let db = sys.database(sym("D")).unwrap();
    let db = db.read();
    // Four levels of nesting, correlated through outer variables.
    let v = run_query(
        &*db,
        "select X.N from X in P where \
           exists(select Y from Y in P where Y.N > X.N and \
             exists(select Z from Z in P where Z.N > Y.N))",
    )
    .unwrap();
    assert_eq!(v, Value::set([Value::Int(1)]));
}

#[test]
fn empty_database_views_are_fine() {
    let sys = sys_with("database Empty; class Nothing_Here type [X: integer];");
    let view = ViewDef::from_script(
        "create view V; import all classes from database Empty; \
         class Sub includes (select N from Nothing_Here where N.X > 0); \
         class Im includes imaginary (select [V: N.X] from N in Nothing_Here);",
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    assert_eq!(view.query("count(Sub)").unwrap(), Value::Int(0));
    assert_eq!(view.query("count(Im)").unwrap(), Value::Int(0));
    assert_eq!(view.identity_table_len(sym("Im")), 0);
}

#[test]
fn unicode_in_strings_and_comparison_operators() {
    let sys = sys_with(
        r#"
        database D;
        class P type [Name: string, Age: integer];
        object #1 in P value [Name: "Márgarèt Ⅱ", Age: 66];
        "#,
    );
    let db = sys.database(sym("D")).unwrap();
    let db = db.read();
    assert_eq!(
        run_query(&*db, "select X.Name from X in P where X.Age ≥ 66").unwrap(),
        Value::set([Value::str("Márgarèt Ⅱ")])
    );
}
