//! A kitchen-sink scenario: one university, two databases, every view
//! feature at once. This is the "would a downstream user's real schema
//! survive?" test.

use objects_and_views::oodb::{sym, System, Value};
use objects_and_views::query::{execute_script, DataSource};
use objects_and_views::views::{Materialization, ViewDef, ViewOptions};

fn university() -> System {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Registrar;
        class Course type [Code: string, Credits: integer];
        class Student type [Name: string, Age: integer, Major: string,
                            GPA: float, Courses: {Course}];
        class Grad inherits Student type [Advisor: string];
        object #10 in Course value [Code: "DB101", Credits: 6];
        object #11 in Course value [Code: "OS201", Credits: 4];
        object #12 in Course value [Code: "ML301", Credits: 8];
        object #1 in Student value [Name: "Ada", Age: 20, Major: "CS",
                                    GPA: 3.9, Courses: {#10, #12}];
        object #2 in Student value [Name: "Bob", Age: 23, Major: "Math",
                                    GPA: 2.1, Courses: {#11}];
        object #3 in Grad value [Name: "Cleo", Age: 27, Major: "CS",
                                 GPA: 3.6, Courses: {#10, #11, #12},
                                 Advisor: "Prof. X"];
        name ada = #1;

        database HR;
        class Staff type [Name: string, Age: integer, Salary: integer, Dept: string];
        object #20 in Staff value [Name: "Prof. X", Age: 55, Salary: 90000, Dept: "CS"];
        object #21 in Staff value [Name: "Dean", Age: 60, Salary: 120000, Dept: "Admin"];
        "#,
    )
    .unwrap();
    sys
}

const CAMPUS_VIEW: &str = r#"
    create view Campus;
    import all classes from database Registrar;
    import class Staff from database HR as Employee;

    -- §2: virtual attributes with inference, including an aggregate body.
    attribute Load in class Student has value
        sum((select C.Credits from C in self.Courses));
    attribute Standing in class Student has value
        if self.GPA >= 3.5 then "honors" else "regular";

    -- §4.1 specialization chain.
    class Honors includes (select S from Student where S.GPA >= 3.5);
    class SeniorHonors includes (select H from Honors where H.Age >= 25);

    -- §4.1 generalization across *databases*: students and staff.
    class CampusMember includes Student, Employee;

    -- §4.1 behavioral generalization over a spec defined in the base.
    -- (Both Student and Employee carry Name+Age.)
    class PersonLike_Spec includes (select S from Student where false);
    -- ^ a virtual spec would need attributes; use `like` against Employee
    --   instead: everything at least as specific as Employee's shape.
    class Payable includes like Employee;

    -- §4.1 parameterized classes.
    class ByMajor(M) includes (select S from Student where S.Major = M);

    -- §5 imaginary objects from a multi-binding query: one Enrollment
    -- object per (student, course) pair.
    class Enrollment includes imaginary
        (select [Who: S, What: C] from S in Student, C in S.Courses);
    attribute Heavy in class Enrollment has value self.What.Credits >= 6;

    -- §3 hides, late in the script.
    hide attribute Salary in class Employee;
"#;

#[test]
fn the_full_campus_view_works() {
    let sys = university();
    let view = ViewDef::from_script(CAMPUS_VIEW)
        .unwrap()
        .binder(&sys)
        .bind()
        .unwrap();

    // Virtual attributes with aggregates.
    assert_eq!(view.query("ada.Load").unwrap(), Value::Int(14));
    assert_eq!(view.query("ada.Standing").unwrap(), Value::str("honors"));

    // Specialization chain and hierarchy.
    assert_eq!(view.query("count(Honors)").unwrap(), Value::Int(2)); // Ada, Cleo
    assert_eq!(view.query("count(SeniorHonors)").unwrap(), Value::Int(1)); // Cleo
    assert!(view
        .is_subclass_by_name(sym("SeniorHonors"), sym("Student"))
        .unwrap());

    // Cross-database generalization: 3 students + 2 staff.
    assert_eq!(view.query("count(CampusMember)").unwrap(), Value::Int(5));
    // Upward inheritance: Name is common to Student and Employee.
    assert_eq!(
        view.query("count((select M.Name from M in CampusMember))")
            .unwrap(),
        Value::Int(5)
    );

    // Behavioral generalization admits nothing but Employee-shaped classes.
    assert_eq!(view.query("count(Payable)").unwrap(), Value::Int(2));

    // Parameterized classes.
    assert_eq!(
        view.query(r#"count(ByMajor("CS"))"#).unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        view.query(r#"count(ByMajor("Math"))"#).unwrap(),
        Value::Int(1)
    );

    // Imaginary enrollments: Ada 2 + Bob 1 + Cleo 3 = 6 pairs.
    assert_eq!(view.query("count(Enrollment)").unwrap(), Value::Int(6));
    assert_eq!(
        view.query("count((select E from E in Enrollment where E.Heavy))")
            .unwrap(),
        Value::Int(4) // DB101 and ML301 are heavy; Ada(2) + Cleo(2)
    );
    // Join through the imaginary class back to base objects.
    assert_eq!(
        view.query(r#"select E.What.Code from E in Enrollment where E.Who = ada"#)
            .unwrap(),
        Value::set([Value::str("DB101"), Value::str("ML301")])
    );

    // Hides hold.
    assert!(view.query("select E.Salary from E in Employee").is_err());

    // O₂'s flatten: every course anyone is enrolled in.
    assert_eq!(
        view.query("count(flatten((select S.Courses from S in Student)))")
            .unwrap(),
        Value::Int(3)
    );
}

#[test]
fn campus_view_tracks_updates_under_all_materializations() {
    for materialization in [
        Materialization::Cached,
        Materialization::AlwaysRecompute,
        Materialization::Incremental,
    ] {
        let sys = university();
        let view = ViewDef::from_script(CAMPUS_VIEW)
            .unwrap()
            .binder(&sys)
            .options(
                ViewOptions::builder()
                    .materialization(materialization)
                    .build(),
            )
            .bind()
            .unwrap();
        assert_eq!(view.query("count(Honors)").unwrap(), Value::Int(2));
        let enrollments_before = view.extent_of(sym("Enrollment")).unwrap();

        // Bob's grades improve.
        let bob = view
            .query(r#"select the S from S in Student where S.Name = "Bob""#)
            .unwrap();
        let Value::Oid(bob) = bob else { panic!() };
        view.update_attr(bob, sym("GPA"), Value::Float(3.8))
            .unwrap();
        assert_eq!(
            view.query("count(Honors)").unwrap(),
            Value::Int(3),
            "{materialization:?}"
        );
        // Unrelated to enrollments: identities stable.
        assert_eq!(
            view.extent_of(sym("Enrollment")).unwrap(),
            enrollments_before,
            "{materialization:?}"
        );
    }
}

#[test]
fn campus_view_round_trips_through_script_and_materialization() {
    let sys = university();
    let def = ViewDef::from_script(CAMPUS_VIEW).unwrap();
    // Script round-trip.
    let def2 = ViewDef::from_script(&def.to_script()).unwrap();
    assert_eq!(def, def2);
    let view = def2.binder(&sys).bind().unwrap();
    // Materialize and re-query the snapshot.
    let snapshot = view.materialize(sym("CampusSnapshot")).unwrap();
    let mut sys2 = System::new();
    sys2.add_database(snapshot).unwrap();
    let db = sys2.database(sym("CampusSnapshot")).unwrap();
    let db = db.read();
    // Imaginary enrollments became real objects with evaluated attributes.
    let n = objects_and_views::query::run_query(&*db, "count(Enrollment)").unwrap();
    assert_eq!(n, Value::Int(6));
    let heavy = objects_and_views::query::run_query(
        &*db,
        "count((select E from E in Enrollment where E.Heavy))",
    )
    .unwrap();
    assert_eq!(heavy, Value::Int(4));
    // The hidden Salary did not survive into the snapshot.
    let employee = db.schema.class_by_name(sym("Employee")).unwrap();
    assert!(!db
        .schema
        .visible_attrs(employee)
        .contains_key(&sym("Salary")));
}

#[test]
fn type_inference_works_through_the_whole_stack() {
    let sys = university();
    let view = ViewDef::from_script(CAMPUS_VIEW)
        .unwrap()
        .binder(&sys)
        .bind()
        .unwrap();
    // Load : integer (sum of integers); Standing : string.
    let student = DataSource::class_by_name(&view, sym("Student")).unwrap();
    assert_eq!(
        DataSource::attr_sig(&view, student, sym("Load"))
            .unwrap()
            .ty,
        objects_and_views::oodb::Type::Int
    );
    assert_eq!(
        DataSource::attr_sig(&view, student, sym("Standing"))
            .unwrap()
            .ty,
        objects_and_views::oodb::Type::Str
    );
    // Enrollment's core attributes are class-typed.
    let q =
        objects_and_views::query::parse_select("select E.Who.Name from E in Enrollment").unwrap();
    assert_eq!(
        objects_and_views::query::infer_select(&view, &q).unwrap(),
        objects_and_views::oodb::Type::set(objects_and_views::oodb::Type::Str)
    );
}
