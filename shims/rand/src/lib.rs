//! Minimal `rand` stand-in (see `shims/README.md`).
//!
//! Deterministic, seedable, and fast; **not** stream-compatible with the
//! real crate. `StdRng` is SplitMix64 — statistically fine for workload
//! generation, which is the only use in this workspace.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a [`Rng`] can sample uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)` from raw 64-bit entropy.
    fn sample_from(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The object-safe entropy source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64).
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_from(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_from(rng, lo as f64, hi as f64) as f32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_from(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits}");
    }
}
