//! Minimal `parking_lot` stand-in over `std::sync` (see `shims/README.md`).
//!
//! Same surface as the real crate for the subset this workspace uses:
//! guards are returned directly (no `Result`), and a poisoned std lock is
//! recovered transparently — a panicked writer leaves the data in whatever
//! state it reached, exactly like real `parking_lot`.

use std::fmt;
use std::sync::{self, TryLockError};

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A mutex with a non-poisoning guard.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_write().is_some());
        let _r = l.read();
        assert!(l.try_write().is_none());
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = std::sync::Arc::new(RwLock::new(7));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.lock().len(), 2);
    }
}
