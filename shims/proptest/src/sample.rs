//! Sampling helpers.

/// An index into a collection whose length is only known at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Index(usize);

impl Index {
    /// Wraps a raw value; reduced modulo the collection length on use.
    pub fn new(raw: usize) -> Index {
        Index(raw)
    }

    /// Resolves against a collection of length `len` (must be non-zero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}
