//! A mini regex *generator* for string-pattern strategies.
//!
//! Supports the subset the workspace's tests use: literal characters,
//! `\`-escapes, character classes `[a-zA-Z0-9 _]` (with ranges), and the
//! quantifiers `{n}`, `{m,n}`, `*` (as `{0,8}`), `+` (as `{1,8}`), and
//! `?` (as `{0,1}`). Anything fancier panics loudly rather than
//! silently generating the wrong language.

use crate::test_runner::TestRng;

/// Default upper repetition bound for `*` / `+`.
const UNBOUNDED_MAX: usize = 8;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

/// Generates one string matching `pattern`.
pub fn from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, lo, hi) in &atoms {
        let n = if hi > lo {
            lo + rng.below(hi - lo + 1)
        } else {
            *lo
        };
        for _ in 0..n {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len())]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("pattern {pattern:?}: dangling escape"));
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "pattern {pattern:?}: unsupported regex feature {:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("pattern {pattern:?}: unclosed {{"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse().unwrap_or_else(|_| bad_rep(pattern, &body)),
                        n.parse().unwrap_or_else(|_| bad_rep(pattern, &body)),
                    ),
                    None => {
                        let n = body.parse().unwrap_or_else(|_| bad_rep(pattern, &body));
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars
                .get(i)
                .unwrap_or_else(|| panic!("pattern {pattern:?}: dangling escape in class"))
        } else {
            chars[i]
        };
        // Range like `a-z` (a trailing `-` is a literal).
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(c <= hi, "pattern {pattern:?}: inverted class range");
            for v in c..=hi {
                set.push(v);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "pattern {pattern:?}: unclosed [");
    assert!(!set.is_empty(), "pattern {pattern:?}: empty class");
    (set, i + 1)
}

fn bad_rep(pattern: &str, body: &str) -> usize {
    panic!("pattern {pattern:?}: bad repetition {{{body}}}")
}

#[cfg(test)]
mod tests {
    use super::from_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn workspace_patterns() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = from_pattern("[a-zA-Z0-9 ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));

            let s = from_pattern("[A-Z][a-z]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::new(1);
        assert_eq!(from_pattern("abc", &mut rng), "abc");
        let s = from_pattern("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = from_pattern("a?b+", &mut rng);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
            assert!(s.contains('b'));
        }
    }
}
