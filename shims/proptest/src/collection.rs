//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections (half-open internally).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` from `key`/`value` pairs, with *up to* `size` entries
/// (duplicate keys collapse, as in the real crate).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord + fmt::Debug + 'static,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
