//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` values from `inner` about 3/4 of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
