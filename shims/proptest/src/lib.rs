//! Minimal `proptest` stand-in (see `shims/README.md`).
//!
//! Implements the strategy/runner subset this workspace's property tests
//! use: `proptest!` with `#![proptest_config]`, `Strategy` combinators
//! (`prop_map`, `prop_filter_map`, `prop_recursive`, `boxed`),
//! `prop_oneof!`, `Just`, numeric ranges, string patterns (a mini regex
//! generator for `"[a-z]{1,6}"`-style patterns), `collection::{vec,
//! btree_map}`, `option::of`, `sample::Index`, and `any::<T>()`.
//!
//! Differences from the real crate, by design: generation is driven by a
//! deterministic per-test RNG (seeded from the test's module path), there
//! is **no shrinking**, and `.proptest-regressions` files are ignored. A
//! failing case prints all generated inputs before propagating the panic.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics; the runner attributes
/// the failure to the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case unless the condition holds (no retry: the
/// shim just skips to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),*),
                    $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        // prop_assume! miss: discard this case and move on.
                    }
                    Ok(Err(e)) => {
                        panic!(
                            "proptest case {}/{} {}\ninputs:\n{}",
                            __case + 1, __config.cases, e, __inputs,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} failed; inputs:\n{}",
                            __case + 1, __config.cases, __inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
