//! Deterministic runner primitives: RNG, config, and case errors.

use std::fmt;

/// Per-test deterministic RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is negligible for the small spans used in tests.
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Stable seed for a test, derived from its full path (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases, other settings default.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A test-case failure carried through `Result` bodies.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The inputs were unsuitable; in the shim this still fails the test.
    Reject(String),
    /// The property did not hold.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
