//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt;
use std::sync::Arc;

/// How many times a filtering combinator retries before giving up.
const FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy simply produces a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + 'static,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + 'static,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values for which `f` returns `true`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` is applied `depth` times on
    /// top of `self` (the leaf). `desired_size` and `expected_branch_size`
    /// are accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug + 'static,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    U: fmt::Debug + 'static,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}): no value accepted after {FILTER_RETRIES} tries",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): no value accepted after {FILTER_RETRIES} tries",
            self.whence
        );
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "range strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "range strategy: empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "range strategy: empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String patterns: a `&str` is a mini-regex generator
/// (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::from_pattern(self, rng)
    }
}

macro_rules! impl_tuple {
    ($($s:ident/$v:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
impl_tuple!(A / a / 0, B / b / 1);
impl_tuple!(A / a / 0, B / b / 1, C / c / 2);
impl_tuple!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);
impl_tuple!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
impl_tuple!(
    A / a / 0,
    B / b / 1,
    C / c / 2,
    D / d / 3,
    E / e / 4,
    F / f / 5
);
