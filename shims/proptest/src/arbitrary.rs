//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric around zero; avoids NaN/inf which the
        // real crate also excludes by default.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}
