//! Minimal `criterion` stand-in (see `shims/README.md`).
//!
//! Provides the macro/builder surface the workspace's benches use and
//! prints coarse mean/min wall-clock timings to stdout. No statistics, no
//! HTML reports; `cargo bench` compiles and runs offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement budget (coarse: caps total samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl IdLike, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.render(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IdLike,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.render(), self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IdLike {
    /// The printable form.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.0.clone()
    }
}

/// A function/parameter benchmark id.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to benchmark closures; drives the timing loops.
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    /// Times `f` over the configured iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup.
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
        }
    }

    /// Times `routine` over fresh un-timed `setup` output each iteration.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
        }
    }
}

fn run_one(id: &str, samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: run once to estimate cost, then fit iterations into the
    // budget, capped by sample_size.
    let mut b = Bencher {
        iters: 1,
        total: Duration::ZERO,
        min: Duration::MAX,
    };
    f(&mut b);
    let per_iter = b.total.max(Duration::from_nanos(1));
    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)).min(samples as u128) as u64;
    let mut b = Bencher {
        iters: fit.max(1),
        total: Duration::ZERO,
        min: Duration::MAX,
    };
    f(&mut b);
    let mean = b.total.as_nanos() as f64 / b.iters as f64;
    println!(
        "{id:<48} mean {:>12}  min {:>12}  ({} iters)",
        fmt_ns(mean),
        fmt_ns(b.min.as_nanos() as f64),
        b.iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); a shim
            // that only smoke-runs can ignore them.
            $($group();)+
        }
    };
}
